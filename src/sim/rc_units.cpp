#include "sim/rc_units.hpp"

namespace deft {

void RcUnitManager::reset(const Topology& topo, int packet_size) {
  require(packet_size >= 1, "RcUnitManager: bad packet size");
  progress_ = 0;
  flits_held_ = 0;
  busy_units_ = 0;
  topo_ = &topo;
  packet_size_ = packet_size;
  // The node/unit bindings are rebuilt unconditionally (a pointer-identity
  // fast path would be fooled by a new Topology allocated at a recycled
  // address). The rebuild is allocation-free whenever the topology shape
  // repeats: assign() and resize() reuse capacity, and a unit left at rest
  // (the state every well-formed run ends in) clears empty queues.
  unit_of_node_.assign(static_cast<std::size_t>(topo.num_nodes()), -1);
  const std::vector<VerticalLink>& vls = topo.vls();
  if (units_.size() != vls.size()) {
    units_.resize(vls.size());
  }
  for (std::size_t i = 0; i < vls.size(); ++i) {
    Unit& unit = units_[i];
    unit.node = vls[i].chiplet_node;
    unit_of_node_[static_cast<std::size_t>(unit.node)] =
        static_cast<int>(i);
    unit.queue.clear();
    unit.reserved = false;
    unit.granted_to = kInvalidNode;
    unit.granted_packet = -1;
    unit.grant_arrives = 0;
    unit.buffer.clear();
    unit.absorbing_done = false;
    unit.reinject_vc = 0;
  }
}

int RcUnitManager::permission_latency(NodeId a, NodeId b) const {
  // The permission network is modelled as hop-count-delayed signalling:
  // Manhattan distance on the global grid plus two cycles for the vertical
  // crossings of the control path.
  return manhattan(topo_->node(a).global, topo_->node(b).global) + 2;
}

RcUnitManager::Unit& RcUnitManager::unit_at(NodeId node) {
  const int u = unit_of_node_[static_cast<std::size_t>(node)];
  require(u >= 0, "RcUnitManager: node has no RC unit");
  return units_[static_cast<std::size_t>(u)];
}

const RcUnitManager::Unit& RcUnitManager::unit_at(NodeId node) const {
  const int u = unit_of_node_[static_cast<std::size_t>(node)];
  require(u >= 0, "RcUnitManager: node has no RC unit");
  return units_[static_cast<std::size_t>(u)];
}

void RcUnitManager::request(NodeId unit_node, NodeId requester,
                            PacketId packet, Cycle now) {
  Unit& unit = unit_at(unit_node);
  if (at_rest(unit)) {
    ++busy_units_;
  }
  unit.queue.push_back(
      {requester, packet, now + permission_latency(requester, unit_node)});
}

int RcUnitManager::request_parallel(NodeId unit_node, NodeId requester,
                                    PacketId packet, Cycle now) {
  Unit& unit = unit_at(unit_node);
  const int delta = at_rest(unit) ? 1 : 0;
  unit.queue.push_back(
      {requester, packet, now + permission_latency(requester, unit_node)});
  return delta;
}

bool RcUnitManager::grant_ready(NodeId unit_node, NodeId requester,
                                PacketId packet, Cycle now) const {
  const Unit& unit = unit_at(unit_node);
  return unit.reserved && unit.granted_to == requester &&
         unit.granted_packet == packet && now >= unit.grant_arrives;
}

void RcUnitManager::absorb(NodeId unit_node, const Flit& flit, Cycle now,
                           const PacketTable& packets) {
  Unit& unit = unit_at(unit_node);
  check(unit.reserved && unit.granted_packet == flit.packet,
        "RcUnitManager: absorbing a flit without a reservation");
  check(static_cast<int>(unit.buffer.size()) < packet_size_,
        "RcUnitManager: RC buffer overflow");
  unit.buffer.push_back(flit);
  ++flits_held_;
  if (flit.is_tail()) {  // kind stamped when the flit entered the network
    unit.absorbing_done = true;
  }
  (void)now;
  (void)packets;
}

void RcUnitManager::publish_initial_credits(Network& net) const {
  for (const Unit& unit : units_) {
    net.add_rc_out_credits(unit.node, packet_size_);
  }
}

void RcUnitManager::tick(Cycle now, Network& net,
                         const PacketTable& packets) {
  (void)packets;
  if (busy_units_ == 0) {
    return;  // nothing queued, reserved or buffered anywhere
  }
  for (Unit& unit : units_) {
    // Re-inject absorbed flits into the chiplet through the RC input port.
    if (unit.absorbing_done && !unit.buffer.empty()) {
      if (net.rc_in_free(unit.node, unit.reinject_vc) > 0) {
        net.inject_rc(unit.node, unit.reinject_vc, unit.buffer.front());
        unit.buffer.pop_front();
        --flits_held_;
        ++progress_;
        if (unit.buffer.empty()) {
          // Packet fully re-injected: free the buffer, release the
          // reservation, restore the router's RC output credits.
          unit.absorbing_done = false;
          unit.reserved = false;
          unit.granted_to = kInvalidNode;
          unit.granted_packet = -1;
          unit.reinject_vc = (unit.reinject_vc + 1) % net.num_vcs();
          net.add_rc_out_credits(unit.node, packet_size_);
          if (unit.queue.empty()) {
            --busy_units_;  // back at rest
          }
        }
      }
    }
    // Issue the next grant once the unit is idle.
    if (!unit.reserved && !unit.queue.empty() &&
        unit.queue.front().arrives <= now) {
      const Request req = unit.queue.front();
      unit.queue.pop_front();
      unit.reserved = true;
      unit.granted_to = req.requester;
      unit.granted_packet = req.packet;
      unit.grant_arrives = now + permission_latency(unit.node, req.requester);
      ++progress_;
    }
  }
}

}  // namespace deft
