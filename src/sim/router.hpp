// Per-router microarchitectural state.
//
// The router is input-queued with per-port virtual-channel buffers and
// credit-based wormhole flow control, processed in three stages per cycle
// (route computation, VC allocation, switch allocation + traversal),
// matching the one-cycle-per-hop model of the Noxim simulator the paper
// builds on. Round-robin pointers make every arbiter fair; the output-VC
// round-robin doubles as DeFT's round-robin VN (re)assignment wherever the
// routing function admits both VNs.
//
// Buffer layout is structure-of-arrays over lanes: every input VC is a
// fixed "lane" (lane = port * kMaxVcs + vc, the same index the occupancy
// bitmask uses), and what used to be one array of fat InputVc objects is
// split into parallel lane-indexed arrays - a flat flit-slot plane
// (lane-major rings), the ring metadata (head_, count_: two 32-byte
// arrays that stay resident while a router is hot), the head-of-line
// route state, and the output-VC state. The pipeline stages stream the
// array they need: the switch stage streams (dst lane, vc, kind) through
// the slot plane and the owned-output bitmask without touching route
// state, the route stage reads one 8-byte head slot per occupied lane
// plus the packet's interned route (PacketTable::route_of), and the
// head/tail kind byte stamped at injection keeps the packet table out
// of the traversal loop entirely.
#pragma once

#include <array>

#include "common/simd.hpp"
#include "sim/packet.hpp"

namespace deft {

/// Maximum supported buffer depth in flits (configured depth may be less).
inline constexpr int kMaxBufferDepth = 8;
static_assert((kMaxBufferDepth & (kMaxBufferDepth - 1)) == 0,
              "FlitStore indexing relies on power-of-two masking");
static_assert(kMaxVcs * kMaxBufferDepth <= kMaxPortCredits,
              "routing's credit-class bound must cover a full output port");

/// One buffer lane per (input port, VC) pair.
inline constexpr int kNumLanes = kNumPorts * kMaxVcs;

/// Flit storage for one router: per-lane ring buffers over one flat
/// lane-major slot plane, with the ring metadata held in separate dense
/// arrays (head_ and count_ each cover all 32 lanes in half a cache
/// line, so the occupancy-driven scans never touch a lane's slots just
/// to learn its fill level). Ring indices wrap with a power-of-two mask,
/// keeping division out of the per-flit path; capacity checks are the
/// caller's job - the flow-control credits guarantee a `push` never
/// overflows the configured buffer depth.
class FlitStore {
 public:
  static constexpr int lane_of(int port, int vc) {
    return port * kMaxVcs + vc;
  }

  bool empty(int lane) const { return count_[static_cast<std::size_t>(lane)] == 0; }
  int size(int lane) const {
    return static_cast<int>(count_[static_cast<std::size_t>(lane)]);
  }

  /// Bitmask of non-empty lanes (bit = lane index), read straight off the
  /// dense count_ array in one SIMD pass. Ground truth - unlike
  /// RouterState::occupancy it cannot go stale - and iterating its set
  /// bits ascending visits lanes in exactly the scalar (port, VC) nested
  /// loop order. Lanes above the configured VC count are never pushed to,
  /// so their bits are always clear.
  std::uint32_t occupied_mask() const {
    static_assert(kNumLanes == 32,
                  "occupied_mask packs one bit per lane into a uint32");
    return simd::nonzero_mask32(count_.data());
  }

  void push(int lane, const Flit& flit) {
    const std::size_t l = static_cast<std::size_t>(lane);
    slots_[slot(l, count_[l])] = flit;
    ++count_[l];
  }

  /// Head-of-lane field reads (one 8-byte slot; kind and packet share it).
  PacketId front_packet(int lane) const {
    const std::size_t l = static_cast<std::size_t>(lane);
    return slots_[slot(l, 0)].packet;
  }
  FlitKind front_kind(int lane) const {
    const std::size_t l = static_cast<std::size_t>(lane);
    return slots_[slot(l, 0)].kind;
  }

  /// Reads the flit at ring `offset` behind the front (0 = front) without
  /// popping; `offset` must be < size(lane). Off the per-cycle path: fault
  /// surgery scans lanes for in-flight packet heads.
  Flit peek(int lane, int offset) const {
    const std::size_t l = static_cast<std::size_t>(lane);
    return slots_[slot(l, static_cast<std::uint32_t>(offset))];
  }

  Flit pop(int lane) {
    const std::size_t l = static_cast<std::size_t>(lane);
    const Flit flit = slots_[slot(l, 0)];
    head_[l] = static_cast<std::uint8_t>((head_[l] + 1) & kMask);
    --count_[l];
    return flit;
  }

 private:
  static constexpr std::uint32_t kMask =
      static_cast<std::uint32_t>(kMaxBufferDepth - 1);
  static constexpr std::size_t kSlots =
      static_cast<std::size_t>(kNumLanes) * kMaxBufferDepth;

  std::size_t slot(std::size_t lane, std::uint32_t offset) const {
    return lane * kMaxBufferDepth + ((head_[lane] + offset) & kMask);
  }

  std::array<Flit, kSlots> slots_{};
  std::array<std::uint8_t, kNumLanes> head_{};
  std::array<std::uint8_t, kNumLanes> count_{};
};

/// Head-of-line routing state of one input VC (wormhole: the route and
/// downstream VC are held until the tail flit leaves). The flits
/// themselves live in the router's FlitStore lane of the same index.
struct InputVcState {
  bool route_ready = false;  ///< head-of-line route has been computed
  RouteDecision decision;
  std::int8_t out_vc = -1;  ///< allocated downstream VC, -1 = none
};

/// One output virtual channel: which input (port, vc) currently owns it
/// (wormhole allocation, released at the tail flit) and the credit count
/// mirroring the downstream input buffer.
struct OutputVc {
  std::int8_t owner_port = -1;  ///< input (port, vc) holding this output VC
  std::int8_t owner_vc = -1;
  std::int16_t credits = 0;  ///< free downstream buffer slots
};

/// The complete per-router microarchitectural state, advanced one cycle
/// at a time by Network::step()/apply().
struct RouterState {
  FlitStore flits;
  /// Lane-indexed (FlitStore::lane_of) input-VC routing state.
  std::array<InputVcState, kNumLanes> in;
  /// Lane-indexed output VCs: out[lane_of(port, vc)].
  std::array<OutputVc, kNumLanes> out;
  /// Round-robin pointers: VC allocation (per output port, over input VC
  /// index space), output-VC choice (per output port), switch allocation
  /// (per output port).
  std::array<std::uint8_t, kNumPorts> va_ptr{};
  std::array<std::uint8_t, kNumPorts> ovc_ptr{};
  std::array<std::uint8_t, kNumPorts> sa_ptr{};
  /// Occupancy bitmask: bit (port * kMaxVcs + vc) - the lane index - set
  /// when the input VC's buffer lane is non-empty. The active-router
  /// worklist in Network keys off this word: a router is scanned only
  /// while some bit is set.
  std::uint64_t occupancy = 0;
  static_assert(kNumLanes <= 64,
                "RouterState::occupancy packs one bit per (port, vc)");
  /// Owned-output bitmask: bit lane_of(out_port, out_vc) set iff that
  /// output VC has an owner (owner_port >= 0). The switch allocator
  /// visits only the set groups - in (port, vc) order, so arbitration is
  /// bit-identical to the scan over all kNumPorts x num_vcs output VCs -
  /// instead of walking every output VC of every active router.
  std::uint32_t owned = 0;
  static_assert(kNumLanes <= 32,
                "RouterState::owned packs one bit per output (port, vc)");

  static constexpr int occ_bit(int port, int vc) {
    return FlitStore::lane_of(port, vc);
  }
};

}  // namespace deft
