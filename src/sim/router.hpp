// Per-router microarchitectural state.
//
// The router is input-queued with per-port virtual-channel buffers and
// credit-based wormhole flow control, processed in three stages per cycle
// (route computation, VC allocation, switch allocation + traversal),
// matching the one-cycle-per-hop model of the Noxim simulator the paper
// builds on. Round-robin pointers make every arbiter fair; the output-VC
// round-robin doubles as DeFT's round-robin VN (re)assignment wherever the
// routing function admits both VNs.
#pragma once

#include <array>

#include "sim/packet.hpp"

namespace deft {

/// Maximum supported buffer depth in flits (configured depth may be less).
inline constexpr int kMaxBufferDepth = 8;
static_assert((kMaxBufferDepth & (kMaxBufferDepth - 1)) == 0,
              "FlitFifo indexing relies on power-of-two masking");

/// Fixed-capacity flit FIFO (power-of-two ring buffer; indices wrap with a
/// mask, keeping division out of the per-flit path). Capacity checks are
/// the caller's job: the flow-control credits guarantee a `push` never
/// overflows the configured buffer depth.
class FlitFifo {
 public:
  bool empty() const { return count_ == 0; }
  int size() const { return static_cast<int>(count_); }

  void push(const Flit& flit) {
    slots_[(head_ + count_) & kMask] = flit;
    ++count_;
  }

  const Flit& front() const { return slots_[head_]; }

  Flit pop() {
    const Flit flit = slots_[head_];
    head_ = (head_ + 1) & kMask;
    --count_;
    return flit;
  }

 private:
  static constexpr std::uint32_t kMask =
      static_cast<std::uint32_t>(kMaxBufferDepth - 1);

  std::array<Flit, kMaxBufferDepth> slots_{};
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
};

/// One input virtual channel: its flit buffer plus the head-of-line
/// packet's routing state (wormhole: the route and downstream VC are
/// held until the tail flit leaves).
struct InputVc {
  FlitFifo fifo;
  bool route_ready = false;  ///< head-of-line route has been computed
  RouteDecision decision;
  std::int8_t out_vc = -1;  ///< allocated downstream VC, -1 = none
};

/// One output virtual channel: which input (port, vc) currently owns it
/// (wormhole allocation, released at the tail flit) and the credit count
/// mirroring the downstream input buffer.
struct OutputVc {
  std::int8_t owner_port = -1;  ///< input (port, vc) holding this output VC
  std::int8_t owner_vc = -1;
  std::int16_t credits = 0;  ///< free downstream buffer slots
};

/// The complete per-router microarchitectural state, advanced one cycle
/// at a time by Network::step()/apply().
struct RouterState {
  std::array<std::array<InputVc, kMaxVcs>, kNumPorts> in;
  std::array<std::array<OutputVc, kMaxVcs>, kNumPorts> out;
  /// Round-robin pointers: VC allocation (per output port, over input VC
  /// index space), output-VC choice (per output port), switch allocation
  /// (per output port).
  std::array<std::uint8_t, kNumPorts> va_ptr{};
  std::array<std::uint8_t, kNumPorts> ovc_ptr{};
  std::array<std::uint8_t, kNumPorts> sa_ptr{};
  /// Occupancy bitmask: bit (port * kMaxVcs + vc) set when the input VC
  /// FIFO is non-empty. The active-router worklist in Network keys off
  /// this word: a router is scanned only while some bit is set.
  std::uint64_t occupancy = 0;
  static_assert(kNumPorts * kMaxVcs <= 64,
                "RouterState::occupancy packs one bit per (port, vc)");

  static int occ_bit(int port, int vc) { return port * kMaxVcs + vc; }
};

}  // namespace deft
