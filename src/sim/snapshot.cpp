#include "sim/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace deft {
namespace {

constexpr char kMagic[8] = {'D', 'E', 'F', 'T', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;  // magic, version, len, sum

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Little-endian primitive writer over a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { raw(v, 2); }
  void u32(std::uint32_t v) { raw(v, 4); }
  void u64(std::uint64_t v) { raw(v, 8); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  void raw(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian reader; underflow throws SnapshotError.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Reads a count that will drive a loop of elements at least
  /// `min_element_bytes` each; bounding it by the remaining payload turns
  /// a corrupt length field into a clean truncation error instead of an
  /// attempted multi-gigabyte allocation.
  std::size_t count(std::size_t min_element_bytes) {
    const std::uint64_t n = u64();
    if (min_element_bytes > 0 &&
        n > (size_ - pos_) / min_element_bytes) {
      throw SnapshotError("truncated snapshot: element count " +
                          std::to_string(n) + " exceeds remaining payload");
    }
    return static_cast<std::size_t>(n);
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) {
    if (n > size_ - pos_) {
      throw SnapshotError("truncated snapshot: read past end of payload");
    }
  }
  std::uint64_t raw(int bytes) {
    need(static_cast<std::uint64_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const std::uint64_t x : v) {
    w.u64(x);
  }
}

void read_u64_vec(Reader& r, std::vector<std::uint64_t>& v) {
  v.resize(r.count(8));
  for (std::uint64_t& x : v) {
    x = r.u64();
  }
}

void write_flit(Writer& w, const Flit& f) {
  w.i32(f.packet);
  w.u16(f.seq);
  w.u8(f.kind);
}

Flit read_flit(Reader& r) {
  Flit f;
  f.packet = r.i32();
  f.seq = r.u16();
  f.kind = r.u8();
  return f;
}

VlFaultSet faults_from_bits(std::uint64_t bits) {
  VlFaultSet set;
  for (int b = 0; b < 64; ++b) {
    if ((bits >> b) & 1) {
      set.set_faulty(b);
    }
  }
  return set;
}

}  // namespace

/// Friend of every simulation class holding checkpointable state; the
/// whole save/restore implementation lives in its static members.
class SnapshotAccess {
 public:
  static std::vector<std::uint8_t> save(const SimStepper& st);
  static void restore(const std::vector<std::uint8_t>& data, Simulator& sim,
                      SimStepper& st, SimWorkspace& ws);

 private:
  static std::string fingerprint(const Simulator& sim);

  static void save_stepper(Writer& w, const SimStepper& st);
  static void restore_stepper(Reader& r, SimStepper& st);
  static void save_streams(Writer& w, const Simulator& sim);
  static void restore_streams(Reader& r, Simulator& sim);
  static void save_packets(Writer& w, const PacketTable& packets);
  static void restore_packets(Reader& r, PacketTable& packets);
  static void save_network(Writer& w, const Network& net);
  static void restore_network(Reader& r, Network& net);
  static void save_nis(Writer& w, const std::vector<NetworkInterface>& nis);
  static void restore_nis(Reader& r, std::vector<NetworkInterface>& nis);
  static void save_rc(Writer& w, const RcUnitManager& rc);
  static void restore_rc(Reader& r, RcUnitManager& rc);
  static void save_surgeon(Writer& w, const FaultSurgeon& s);
  static void restore_surgeon(Reader& r, FaultSurgeon& s, Simulator& sim);
  static void save_worklists(Writer& w, const SimWorkspace& ws);
  static void restore_worklists(Reader& r, SimWorkspace& ws);
  static void save_results(Writer& w, const SimResults& res);
  static void restore_results(Reader& r, SimResults& res);
};

std::string SnapshotAccess::fingerprint(const Simulator& sim) {
  std::ostringstream out;
  const SimKnobs& k = sim.knobs_;
  const Topology& t = *sim.topo_;
  out << "topo=" << t.num_nodes() << "n/" << t.num_channels() << "c/"
      << t.num_vl_channels() << "vl/" << t.num_chiplets() << "chip/"
      << t.endpoints().size() << "ep"
      << " knobs=" << k.num_vcs << "v/" << k.buffer_depth << "b/"
      << k.packet_size << "p/" << k.vl_serialization << "s/w" << k.warmup
      << "/m" << k.measure << "/d" << k.drain_max << "/wd"
      << k.watchdog_cycles << "/seed" << k.seed << "/core"
      << static_cast<int>(k.core) << "/rng" << static_cast<int>(k.rng_mode)
      << " alg=" << sim.algorithm_->name() << "/"
      << sim.algorithm_->num_vcs() << " traffic=" << sim.traffic_->name()
      << " faults=0x" << std::hex << sim.faults_.bits() << std::dec
      << " policy=" << static_cast<int>(sim.policy_) << " timeline=[";
  if (sim.timeline_ != nullptr) {
    for (const FaultEvent& ev : sim.timeline_->events()) {
      out << "(" << ev.cycle << "," << ev.channel << ","
          << static_cast<int>(ev.kind) << ")";
    }
  }
  out << "]";
  // shards/batch_size are execution-shape knobs with bit-identical
  // results by contract, so they stay out of the fingerprint: a snapshot
  // of a sharded or batched run restores onto the serial stepper.
  return out.str();
}

void SnapshotAccess::save_stepper(Writer& w, const SimStepper& st) {
  w.i64(st.measure_end_);
  w.i64(st.hard_end_);
  w.i64(st.now_);
  w.i64(st.idle_cycles_);
  w.b(st.lookahead_);
  w.b(st.primed_);
  w.b(st.deadlock_);
  w.b(st.drained_);
  w.b(st.done_);
  w.u64(st.counters_.created);
  w.u64(st.counters_.created_measured);
  w.u64(st.counters_.dropped_unroutable);
  w.u64(st.delivered_measured_);
}

void SnapshotAccess::restore_stepper(Reader& r, SimStepper& st) {
  st.measure_end_ = r.i64();
  st.hard_end_ = r.i64();
  st.now_ = r.i64();
  st.idle_cycles_ = r.i64();
  st.lookahead_ = r.b();
  st.primed_ = r.b();
  st.deadlock_ = r.b();
  st.drained_ = r.b();
  st.done_ = r.b();
  st.counters_.created = r.u64();
  st.counters_.created_measured = r.u64();
  st.counters_.dropped_unroutable = r.u64();
  st.delivered_measured_ = r.u64();
}

void SnapshotAccess::save_streams(Writer& w, const Simulator& sim) {
  std::vector<std::uint64_t> words;
  sim.algorithm_->save_stream_state(words);
  write_u64_vec(w, words);
  words.clear();
  sim.traffic_->save_stream_state(words);
  write_u64_vec(w, words);
}

void SnapshotAccess::restore_streams(Reader& r, Simulator& sim) {
  std::vector<std::uint64_t> words;
  std::size_t cursor = 0;
  read_u64_vec(r, words);
  sim.algorithm_->load_stream_state(words, cursor);
  if (cursor != words.size()) {
    throw SnapshotError("algorithm stream state not fully consumed");
  }
  read_u64_vec(r, words);
  cursor = 0;
  sim.traffic_->load_stream_state(words, cursor);
  if (cursor != words.size()) {
    throw SnapshotError("traffic stream state not fully consumed");
  }
}

void SnapshotAccess::save_packets(Writer& w, const PacketTable& packets) {
  const RouteStore& store = packets.routes_;
  w.u64(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const PacketRoute& rt = store.get(static_cast<RouteId>(i));
    w.i32(rt.src);
    w.i32(rt.dst);
    w.i32(rt.down_node);
    w.i32(rt.up_exit);
    w.u8(rt.initial_vcs);
    w.b(rt.rc_absorb);
    w.i32(rt.rc_unit);
  }
  w.u64(packets.hot_.size());
  for (const PacketHot& h : packets.hot_) {
    w.i32(h.route);
    w.u16(h.size);
    w.u8(h.app);
    w.b(h.measured);
  }
  for (const PacketTimes& t : packets.times_) {
    w.i64(t.created);
    w.i64(t.net_injected);
    w.i64(t.ejected);
  }
}

void SnapshotAccess::restore_packets(Reader& r, PacketTable& packets) {
  packets.clear();
  // Re-interning the saved routes in saved id order reproduces every
  // RouteId exactly (interning assigns ids densely in first-appearance
  // order), so the hot plane's route references and the surgeon's
  // per-route affected_ plane stay valid verbatim.
  const std::size_t num_routes = r.count(20);
  for (std::size_t i = 0; i < num_routes; ++i) {
    PacketRoute rt;
    rt.src = r.i32();
    rt.dst = r.i32();
    rt.down_node = r.i32();
    rt.up_exit = r.i32();
    rt.initial_vcs = r.u8();
    rt.rc_absorb = r.b();
    rt.rc_unit = r.i32();
    if (packets.routes_.intern(rt) != static_cast<RouteId>(i)) {
      throw SnapshotError("snapshot route plane holds duplicate routes");
    }
  }
  const std::size_t num_packets = r.count(8);
  packets.hot_.resize(num_packets);
  for (PacketHot& h : packets.hot_) {
    h.route = r.i32();
    h.size = r.u16();
    h.app = r.u8();
    h.measured = r.b();
    if (h.route < 0 || static_cast<std::size_t>(h.route) >= num_routes) {
      throw SnapshotError("snapshot packet references missing route");
    }
  }
  packets.times_.resize(num_packets);
  for (PacketTimes& t : packets.times_) {
    t.created = r.i64();
    t.net_injected = r.i64();
    t.ejected = r.i64();
  }
}

void SnapshotAccess::save_network(Writer& w, const Network& net) {
  if (net.num_shards_ != 1 || net.lanes_.size() != 1) {
    throw SnapshotError("save_snapshot: stepped runs are serial");
  }
  // A stepper pause is a cycle boundary: every staged outbox must have
  // been committed. An occupied outbox means the caller paused somewhere
  // illegal, and the snapshot would silently drop the staged moves.
  for (const auto& box : net.staged_arrivals_) {
    if (!box.empty()) {
      throw SnapshotError("save_snapshot: staged arrivals pending");
    }
  }
  for (const auto& box : net.staged_credits_) {
    if (!box.empty()) {
      throw SnapshotError("save_snapshot: staged credits pending");
    }
  }
  for (const auto& box : net.staged_ejections_) {
    if (!box.empty()) {
      throw SnapshotError("save_snapshot: staged ejections pending");
    }
  }
  for (const auto& box : net.rc_departures_) {
    if (!box.empty()) {
      throw SnapshotError("save_snapshot: staged RC departures pending");
    }
  }
  for (const auto& box : net.staged_rc_out_credits_) {
    if (!box.empty()) {
      throw SnapshotError("save_snapshot: staged RC credits pending");
    }
  }

  w.u64(net.routers_.size());
  for (const RouterState& rs : net.routers_) {
    for (int lane = 0; lane < kNumLanes; ++lane) {
      const int n = rs.flits.size(lane);
      w.u8(static_cast<std::uint8_t>(n));
      for (int off = 0; off < n; ++off) {
        write_flit(w, rs.flits.peek(lane, off));
      }
    }
    for (const InputVcState& in : rs.in) {
      w.b(in.route_ready);
      w.u8(static_cast<std::uint8_t>(port_index(in.decision.out_port)));
      w.u8(in.decision.vcs);
      w.i8(in.out_vc);
    }
    for (const OutputVc& out : rs.out) {
      w.i8(out.owner_port);
      w.i8(out.owner_vc);
      w.i16(out.credits);
    }
    for (int p = 0; p < kNumPorts; ++p) {
      w.u8(rs.va_ptr[static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < kNumPorts; ++p) {
      w.u8(rs.ovc_ptr[static_cast<std::size_t>(p)]);
    }
    for (int p = 0; p < kNumPorts; ++p) {
      w.u8(rs.sa_ptr[static_cast<std::size_t>(p)]);
    }
    w.u64(rs.occupancy);
    w.u32(rs.owned);
  }
  w.u64(net.channel_faulty_.size());
  for (const char c : net.channel_faulty_) {
    w.u8(static_cast<std::uint8_t>(c));
  }
  w.u64(net.vl_next_free_.size());
  for (const Cycle c : net.vl_next_free_) {
    w.i64(c);
  }
  w.u64(net.local_credit_.size());
  for (const int c : net.local_credit_) {
    w.i64(c);
  }
  w.u64(net.rc_in_credit_.size());
  for (const int c : net.rc_in_credit_) {
    w.i64(c);
  }
  const auto& lane = net.lanes_[0];
  write_u64_vec(w, lane.active);
  w.u64(lane.flits_buffered);
  w.u64(lane.moves);
}

void SnapshotAccess::restore_network(Reader& r, Network& net) {
  // prepare() pre-stages the RC units' initial output credits, which a
  // normal run commits in its first apply(). The saved credit planes
  // already include that commit, so the fresh staging is discarded along
  // with every other outbox before the saved state takes over.
  for (auto& box : net.staged_arrivals_) {
    box.clear();
  }
  for (auto& box : net.staged_credits_) {
    box.clear();
  }
  for (auto& box : net.staged_ejections_) {
    box.clear();
  }
  for (auto& box : net.rc_departures_) {
    box.clear();
  }
  for (auto& box : net.staged_rc_out_credits_) {
    box.clear();
  }
  if (r.count(100) != net.routers_.size()) {
    throw SnapshotError("snapshot router count mismatch");
  }
  for (RouterState& rs : net.routers_) {
    rs.flits = FlitStore{};
    for (int lane = 0; lane < kNumLanes; ++lane) {
      const int n = r.u8();
      if (n > kMaxBufferDepth) {
        throw SnapshotError("snapshot flit lane overflows buffer depth");
      }
      for (int off = 0; off < n; ++off) {
        rs.flits.push(lane, read_flit(r));
      }
    }
    for (InputVcState& in : rs.in) {
      in.route_ready = r.b();
      in.decision.out_port = static_cast<Port>(r.u8());
      in.decision.vcs = r.u8();
      in.out_vc = r.i8();
    }
    for (OutputVc& out : rs.out) {
      out.owner_port = r.i8();
      out.owner_vc = r.i8();
      out.credits = r.i16();
    }
    for (int p = 0; p < kNumPorts; ++p) {
      rs.va_ptr[static_cast<std::size_t>(p)] = r.u8();
    }
    for (int p = 0; p < kNumPorts; ++p) {
      rs.ovc_ptr[static_cast<std::size_t>(p)] = r.u8();
    }
    for (int p = 0; p < kNumPorts; ++p) {
      rs.sa_ptr[static_cast<std::size_t>(p)] = r.u8();
    }
    rs.occupancy = r.u64();
    rs.owned = r.u32();
  }
  if (r.count(1) != net.channel_faulty_.size()) {
    throw SnapshotError("snapshot channel count mismatch");
  }
  for (char& c : net.channel_faulty_) {
    c = static_cast<char>(r.u8());
  }
  if (r.count(8) != net.vl_next_free_.size()) {
    throw SnapshotError("snapshot VL channel count mismatch");
  }
  for (Cycle& c : net.vl_next_free_) {
    c = r.i64();
  }
  if (r.count(8) != net.local_credit_.size()) {
    throw SnapshotError("snapshot credit plane size mismatch");
  }
  for (int& c : net.local_credit_) {
    c = static_cast<int>(r.i64());
  }
  if (r.count(8) != net.rc_in_credit_.size()) {
    throw SnapshotError("snapshot RC credit plane size mismatch");
  }
  for (int& c : net.rc_in_credit_) {
    c = static_cast<int>(r.i64());
  }
  auto& lane = net.lanes_[0];
  read_u64_vec(r, lane.active);
  lane.flits_buffered = r.u64();
  lane.moves = r.u64();
}

void SnapshotAccess::save_nis(Writer& w,
                              const std::vector<NetworkInterface>& nis) {
  w.u64(nis.size());
  for (const NetworkInterface& ni : nis) {
    w.i32(ni.node_);
    for (const std::uint64_t word : ni.rng_.state()) {
      w.u64(word);
    }
    // Counter-mode route stream: the key is a pure function of
    // (seed, node) and is rebuilt by prepare(); only the draw count is
    // run state. Always written (0 in serial mode) - format v2.
    w.u64(ni.route_rng_.counter());
    // Only the unconsumed queue slice is observable; it restores at
    // head 0 (the cursor position is not behavior-affecting).
    w.u64(ni.queue_.size() - ni.queue_head_);
    for (std::size_t i = ni.queue_head_; i < ni.queue_.size(); ++i) {
      w.i32(ni.queue_[i]);
    }
    w.i32(ni.active_);
    w.u16(ni.active_size_);
    w.u8(ni.active_initial_vcs_);
    w.u16(ni.next_seq_);
    w.i32(ni.vc_);
    w.b(ni.perm_requested_);
    w.u8(ni.vc_rr_);
    w.u64(ni.scratch_.size());
    for (const PacketRequest& req : ni.scratch_) {
      w.i32(req.dst);
      w.u8(req.app);
    }
  }
}

void SnapshotAccess::restore_nis(Reader& r,
                                 std::vector<NetworkInterface>& nis) {
  if (r.count(48) != nis.size()) {
    throw SnapshotError("snapshot NI count mismatch");
  }
  for (NetworkInterface& ni : nis) {
    if (r.i32() != ni.node_) {
      throw SnapshotError("snapshot NI endpoint mismatch");
    }
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t& word : state) {
      word = r.u64();
    }
    ni.rng_.set_state(state);
    // Key and mode were already rebuilt by prepare() (both are pure
    // functions of the fingerprint-checked knobs); resume mid-sequence.
    ni.route_rng_.set_counter(r.u64());
    ni.queue_.clear();
    ni.queue_head_ = 0;
    const std::size_t depth = r.count(4);
    for (std::size_t i = 0; i < depth; ++i) {
      ni.queue_.push_back(r.i32());
    }
    ni.active_ = r.i32();
    ni.active_size_ = r.u16();
    ni.active_initial_vcs_ = r.u8();
    ni.next_seq_ = r.u16();
    ni.vc_ = r.i32();
    ni.perm_requested_ = r.b();
    ni.vc_rr_ = r.u8();
    ni.scratch_.clear();
    const std::size_t pending = r.count(5);
    for (std::size_t i = 0; i < pending; ++i) {
      PacketRequest req;
      req.dst = r.i32();
      req.app = r.u8();
      ni.scratch_.push_back(req);
    }
  }
}

void SnapshotAccess::save_rc(Writer& w, const RcUnitManager& rc) {
  w.u64(rc.units_.size());
  for (const auto& unit : rc.units_) {
    w.u64(unit.queue.size());
    for (const auto& req : unit.queue) {
      w.i32(req.requester);
      w.i32(req.packet);
      w.i64(req.arrives);
    }
    w.b(unit.reserved);
    w.i32(unit.granted_to);
    w.i32(unit.granted_packet);
    w.i64(unit.grant_arrives);
    w.u64(unit.buffer.size());
    for (const Flit& f : unit.buffer) {
      write_flit(w, f);
    }
    w.b(unit.absorbing_done);
    w.i32(unit.reinject_vc);
  }
  w.u64(rc.progress_);
  w.u64(rc.flits_held_);
  w.i32(rc.busy_units_);
}

void SnapshotAccess::restore_rc(Reader& r, RcUnitManager& rc) {
  if (r.count(25) != rc.units_.size()) {
    throw SnapshotError("snapshot RC unit count mismatch");
  }
  for (auto& unit : rc.units_) {
    unit.queue.clear();
    const std::size_t queued = r.count(16);
    for (std::size_t i = 0; i < queued; ++i) {
      RcUnitManager::Request req;
      req.requester = r.i32();
      req.packet = r.i32();
      req.arrives = r.i64();
      unit.queue.push_back(req);
    }
    unit.reserved = r.b();
    unit.granted_to = r.i32();
    unit.granted_packet = r.i32();
    unit.grant_arrives = r.i64();
    unit.buffer.clear();
    const std::size_t held = r.count(7);
    for (std::size_t i = 0; i < held; ++i) {
      unit.buffer.push_back(read_flit(r));
    }
    unit.absorbing_done = r.b();
    unit.reinject_vc = r.i32();
  }
  rc.progress_ = r.u64();
  rc.flits_held_ = r.u64();
  rc.busy_units_ = r.i32();
}

void SnapshotAccess::save_surgeon(Writer& w, const FaultSurgeon& s) {
  // order_ and ni_of_node_ are rebuilt deterministically by reset();
  // the per-event scratch (doomed_ etc.) is reassigned at each event
  // application. Only the cursor, the current fault set and the
  // fault-window metrics carry across a pause.
  w.u64(s.cursor_);
  w.u64(s.faults_.bits());
  w.u64(s.lost_);
  w.u64(s.lost_measured_);
  w.i64(s.first_fail_);
  w.u64(s.intervals_.size());
  for (const auto& [start, end] : s.intervals_) {
    w.i64(start);
    w.i64(end);
  }
  w.u64(s.affected_.size());
  for (const char c : s.affected_) {
    w.u8(static_cast<std::uint8_t>(c));
  }
}

void SnapshotAccess::restore_surgeon(Reader& r, FaultSurgeon& s,
                                     Simulator& sim) {
  s.cursor_ = r.u64();
  const std::uint64_t fault_bits = r.u64();
  s.faults_ = faults_from_bits(fault_bits);
  s.lost_ = r.u64();
  s.lost_measured_ = r.u64();
  s.first_fail_ = r.i64();
  s.intervals_.clear();
  const std::size_t intervals = r.count(16);
  for (std::size_t i = 0; i < intervals; ++i) {
    const Cycle start = r.i64();
    const Cycle end = r.i64();
    s.intervals_.push_back({start, end});
  }
  s.affected_.resize(r.count(1));
  for (char& c : s.affected_) {
    c = static_cast<char>(r.u8());
  }
  // Timeline events already applied before the pause changed the fault
  // set; rebuild the algorithm's tables for it (set_faults() contract:
  // identical state to construction under this set, RNG untouched - the
  // stream state restored afterwards completes the picture). The
  // network-side channel marks were restored verbatim with the planes.
  if (fault_bits != sim.faults_.bits()) {
    sim.algorithm_->set_faults(s.faults_);
  }
}

void SnapshotAccess::save_worklists(Writer& w, const SimWorkspace& ws) {
  write_u64_vec(w, ws.busy_);
  write_u64_vec(w, ws.wake_);
  // The scheduled-injection heap: the vector layout of a binary heap is
  // deterministic, so it round-trips verbatim.
  w.u64(ws.events_.size());
  for (const auto& [cycle, ni] : ws.events_) {
    w.i64(cycle);
    w.u64(ni);
  }
  w.u64(ws.net_latencies_.size());
  for (const std::uint32_t s : ws.net_latencies_) {
    w.u32(s);
  }
  w.u64(ws.total_latencies_.size());
  for (const std::uint32_t s : ws.total_latencies_) {
    w.u32(s);
  }
}

void SnapshotAccess::restore_worklists(Reader& r, SimWorkspace& ws) {
  read_u64_vec(r, ws.busy_);
  read_u64_vec(r, ws.wake_);
  ws.events_.clear();
  const std::size_t events = r.count(16);
  for (std::size_t i = 0; i < events; ++i) {
    const Cycle cycle = r.i64();
    const std::size_t ni = static_cast<std::size_t>(r.u64());
    ws.events_.push_back({cycle, ni});
  }
  ws.net_latencies_.resize(r.count(4));
  for (std::uint32_t& s : ws.net_latencies_) {
    s = r.u32();
  }
  ws.total_latencies_.resize(r.count(4));
  for (std::uint32_t& s : ws.total_latencies_) {
    s = r.u32();
  }
}

void SnapshotAccess::save_results(Writer& w, const SimResults& res) {
  // Only the fields the phase loops mutate mid-run; everything else is
  // filled by finish()/finalize() after the run completes.
  w.u64(res.flit_hops);
  w.u64(res.flits_ejected_in_window);
  w.u64(res.region_vc_flits.size());
  for (const auto& per_vc : res.region_vc_flits) {
    for (const std::uint64_t f : per_vc) {
      w.u64(f);
    }
  }
  w.u64(res.vl_channel_flits.size());
  for (const std::uint64_t f : res.vl_channel_flits) {
    w.u64(f);
  }
}

void SnapshotAccess::restore_results(Reader& r, SimResults& res) {
  res.flit_hops = r.u64();
  res.flits_ejected_in_window = r.u64();
  if (r.count(8 * kMaxVcsStats) != res.region_vc_flits.size()) {
    throw SnapshotError("snapshot region count mismatch");
  }
  for (auto& per_vc : res.region_vc_flits) {
    for (std::uint64_t& f : per_vc) {
      f = r.u64();
    }
  }
  if (r.count(8) != res.vl_channel_flits.size()) {
    throw SnapshotError("snapshot VL plane size mismatch");
  }
  for (std::uint64_t& f : res.vl_channel_flits) {
    f = r.u64();
  }
}

std::vector<std::uint8_t> SnapshotAccess::save(const SimStepper& st) {
  if (st.sim_ == nullptr || st.ws_ == nullptr) {
    throw SnapshotError("save_snapshot: stepper not started");
  }
  if (st.finished_) {
    throw SnapshotError("save_snapshot: run already finished");
  }
  const Simulator& sim = *st.sim_;
  const SimWorkspace& ws = *st.ws_;

  std::vector<std::uint8_t> payload;
  Writer w(payload);
  w.str(fingerprint(sim));
  save_stepper(w, st);
  save_streams(w, sim);
  save_packets(w, ws.packets_);
  save_network(w, ws.net_);
  save_nis(w, ws.nis_);
  save_rc(w, ws.rc_units_);
  save_surgeon(w, ws.surgeon_);
  save_worklists(w, ws);
  save_results(w, ws.results_);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  out.insert(out.end(), kMagic, kMagic + 8);
  Writer frame(out);
  frame.u32(kSnapshotVersion);
  frame.u64(payload.size());
  frame.u64(fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void SnapshotAccess::restore(const std::vector<std::uint8_t>& data,
                             Simulator& sim, SimStepper& st,
                             SimWorkspace& ws) {
  if (data.size() < kHeaderBytes) {
    throw SnapshotError("truncated snapshot: " + std::to_string(data.size()) +
                        " bytes is smaller than the header");
  }
  if (std::memcmp(data.data(), kMagic, 8) != 0) {
    throw SnapshotError("not a DeFT snapshot (bad magic)");
  }
  Reader header(data.data() + 8, kHeaderBytes - 8);
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_len != data.size() - kHeaderBytes) {
    throw SnapshotError("truncated snapshot: header promises " +
                        std::to_string(payload_len) + " payload bytes, " +
                        std::to_string(data.size() - kHeaderBytes) +
                        " present");
  }
  const std::uint8_t* payload = data.data() + kHeaderBytes;
  if (fnv1a(payload, payload_len) != checksum) {
    throw SnapshotError("snapshot checksum mismatch (corrupt image)");
  }

  Reader r(payload, payload_len);
  const std::string saved_fp = r.str();
  const std::string expected_fp = fingerprint(sim);
  if (saved_fp != expected_fp) {
    throw SnapshotError(
        "snapshot configuration mismatch:\n  snapshot: " + saved_fp +
        "\n  simulator: " + expected_fp);
  }

  // Run the normal prologue (consumes the run permit, resets every
  // workspace plane), then overwrite with the saved state.
  st.start(sim, ws);
  restore_stepper(r, st);
  restore_streams(r, sim);
  restore_packets(r, ws.packets_);
  restore_network(r, ws.net_);
  restore_nis(r, ws.nis_);
  restore_rc(r, ws.rc_units_);
  restore_surgeon(r, ws.surgeon_, sim);
  restore_worklists(r, ws);
  restore_results(r, ws.results_);
  if (!r.exhausted()) {
    throw SnapshotError("snapshot holds trailing bytes past its payload");
  }
}

std::vector<std::uint8_t> save_snapshot(const SimStepper& stepper) {
  return SnapshotAccess::save(stepper);
}

void restore_snapshot(const std::vector<std::uint8_t>& data, Simulator& sim,
                      SimStepper& stepper, SimWorkspace& ws) {
  SnapshotAccess::restore(data, sim, stepper, ws);
}

void write_snapshot_file(const std::filesystem::path& path,
                         const std::vector<std::uint8_t>& data) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SnapshotError("cannot create " + tmp.string() + ": " +
                        std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SnapshotError("cannot write " + tmp.string() + ": " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    throw SnapshotError("cannot fsync " + tmp.string() + ": " + err);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw SnapshotError("cannot rename " + tmp.string() + " to " +
                        path.string() + ": " + err);
  }
  // Durability of the rename itself: fsync the containing directory.
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::vector<std::uint8_t> read_snapshot_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot read snapshot " + path.string());
  }
  std::vector<std::uint8_t> data;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw SnapshotError("cannot size snapshot " + path.string());
  }
  data.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!in) {
    throw SnapshotError("cannot read snapshot " + path.string());
  }
  return data;
}

}  // namespace deft
