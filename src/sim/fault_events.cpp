#include "sim/fault_events.hpp"

#include <algorithm>
#include <bit>

namespace deft {

void FaultSurgeon::reset(const Topology& topo, const FaultTimeline* timeline,
                         InFlightPolicy policy, const VlFaultSet& initial,
                         const std::vector<NetworkInterface>& nis) {
  topo_ = &topo;
  timeline_ = timeline;
  policy_ = policy;
  faults_ = initial;

  order_.clear();
  cursor_ = 0;
  if (timeline != nullptr) {
    const std::vector<FaultEvent>& events = timeline->events();
    order_.resize(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      order_[i] = static_cast<std::uint32_t>(i);
    }
    // Stable order without a stable sort (std::stable_sort allocates):
    // tie-break equal cycles on the insertion index itself.
    std::sort(order_.begin(), order_.end(),
              [&events](std::uint32_t a, std::uint32_t b) {
                const Cycle ca = events[a].cycle;
                const Cycle cb = events[b].cycle;
                return ca != cb ? ca < cb : a < b;
              });
  }

  ni_of_node_.assign(static_cast<std::size_t>(topo.num_nodes()), -1);
  for (std::size_t i = 0; i < nis.size(); ++i) {
    ni_of_node_[static_cast<std::size_t>(nis[i].node())] =
        static_cast<int>(i);
  }

  lost_ = 0;
  lost_measured_ = 0;
  first_fail_ = -1;
  intervals_.clear();
  if (!faults_.empty()) {
    intervals_.push_back({0, -1});  // static faults: window = whole run
  }
  affected_.clear();
  doomed_list_.clear();
  pinned_empty_.clear();
}

void FaultSurgeon::apply_due(Cycle now, Network& net, RoutingAlgorithm& alg,
                             PacketTable& packets,
                             std::vector<NetworkInterface>& nis,
                             RcUnitManager& rc_units) {
  const std::vector<FaultEvent>& events = timeline_->events();
  while (cursor_ < order_.size() &&
         events[order_[cursor_]].cycle <= now) {
    const FaultEvent& ev = events[order_[cursor_]];
    ++cursor_;

    if (ev.kind == FaultEventKind::repair) {
      faults_.clear(ev.channel);
      net.set_vl_channel_faulty(ev.channel, false);
      alg.set_faults(faults_);
      // Head-of-line decisions computed under the old fault set may now be
      // suboptimal (or, for adaptive tables, stale): invalidate them so
      // the next cycle re-routes - the same refresh a failure applies.
      refresh_head_routes(net);
      if (faults_.empty() && !intervals_.empty() &&
          intervals_.back().second < 0) {
        intervals_.back().second = now;
      }
      continue;
    }

    const bool was_empty = faults_.empty();
    faults_.set_faulty(ev.channel);
    net.set_vl_channel_faulty(ev.channel, true);
    alg.set_faults(faults_);
    if (first_fail_ < 0) {
      first_fail_ = now;
    }
    if (was_empty) {
      intervals_.push_back({now, -1});
    }
    refresh_head_routes(net);
    mark_affected_routes(alg, packets);
    doom_scan(net, alg, packets, nis);
    extract_doomed(net, packets, nis, rc_units);
    apply_policy(net, alg, packets, nis, rc_units);
  }
}

bool FaultSurgeon::fault_active(Cycle c) const {
  for (const auto& [start, end] : intervals_) {
    if (c >= start && (end < 0 || c < end)) {
      return true;
    }
  }
  return false;
}

void FaultSurgeon::mark_affected(RouteId id) {
  if (static_cast<std::size_t>(id) >= affected_.size()) {
    affected_.resize(static_cast<std::size_t>(id) + 1, 0);
  }
  affected_[static_cast<std::size_t>(id)] = 1;
}

void FaultSurgeon::mark_affected_routes(const RoutingAlgorithm& alg,
                                        const PacketTable& packets) {
  const RouteStore& store = packets.route_store();
  if (store.size() > affected_.size()) {
    affected_.resize(store.size(), 0);
  }
  for (std::size_t r = 0; r < store.size(); ++r) {
    if (affected_[r] != 0) {
      continue;
    }
    const PacketRoute& rt = store.get(static_cast<RouteId>(r));
    if (!alg.hop_viable(rt.src, Port::local, rt)) {
      affected_[r] = 1;
    }
  }
}

void FaultSurgeon::release_lane(RouterState& r, int lane) {
  InputVcState& ivc = r.in[static_cast<std::size_t>(lane)];
  if (ivc.out_vc >= 0) {
    const int out_lane = FlitStore::lane_of(port_index(ivc.decision.out_port),
                                            ivc.out_vc);
    OutputVc& out = r.out[static_cast<std::size_t>(out_lane)];
    check(out.owner_port == lane / kMaxVcs && out.owner_vc == lane % kMaxVcs,
          "FaultSurgeon: releasing an output VC owned by another lane");
    out.owner_port = -1;
    out.owner_vc = -1;
    r.owned &= ~(std::uint32_t{1} << out_lane);
  }
  ivc.route_ready = false;
  ivc.out_vc = -1;
}

void FaultSurgeon::refresh_head_routes(Network& net) {
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    RouterState& r = net.routers_[static_cast<std::size_t>(n)];
    for (std::uint64_t occ = r.occupancy; occ != 0; occ &= occ - 1) {
      const int lane = std::countr_zero(occ);
      const InputVcState& ivc = r.in[static_cast<std::size_t>(lane)];
      if (!ivc.route_ready) {
        continue;
      }
      if ((r.flits.front_kind(lane) & kFlitHead) == 0) {
        continue;  // established wormhole: the path is committed
      }
      // The head has routed but not departed: its decision (and any held
      // output VC) reflects the previous fault set. Recompute next cycle.
      release_lane(r, lane);
    }
  }
}

PacketId FaultSurgeon::upstream_owner(const Network& net,
                                      const std::vector<NetworkInterface>& nis,
                                      NodeId node, int lane) const {
  // An empty pinned lane's flits are all upstream: follow the feeder
  // chain. Each upstream router's output VC for this lane is still owned
  // (the tail has not passed), and a pinned lane's front flit belongs to
  // its owner, so the walk ends at the first flit-holding lane - or at
  // the source NI, whose active packet is the owner.
  for (;;) {
    const int p = lane / kMaxVcs;
    const int v = lane % kMaxVcs;
    if (static_cast<Port>(p) == Port::local) {
      const int ni = ni_of_node_[static_cast<std::size_t>(node)];
      check(ni >= 0, "FaultSurgeon: pinned local lane at a non-endpoint");
      const PacketId owner = nis[static_cast<std::size_t>(ni)].active_;
      check(owner >= 0,
            "FaultSurgeon: empty pinned local lane with an idle NI");
      return owner;
    }
    if (static_cast<Port>(p) == Port::rc) {
      return -1;  // RC re-injection leg: stays on the destination chiplet
    }
    const ChannelId in_ch = topo_->in_channel(node, static_cast<Port>(p));
    check(in_ch != kInvalidChannel,
          "FaultSurgeon: pinned lane behind a missing channel");
    const Channel& ch = topo_->channel(in_ch);
    const RouterState& u = net.routers_[static_cast<std::size_t>(ch.src)];
    const OutputVc& out = u.out[static_cast<std::size_t>(
        FlitStore::lane_of(port_index(ch.src_port), v))];
    check(out.owner_port >= 0,
          "FaultSurgeon: empty pinned lane fed by an unowned output VC");
    const int up_lane = FlitStore::lane_of(out.owner_port, out.owner_vc);
    if (!u.flits.empty(up_lane)) {
      return u.flits.front_packet(up_lane);
    }
    node = ch.src;
    lane = up_lane;
  }
}

void FaultSurgeon::doom(PacketId id) {
  if (doomed_[static_cast<std::size_t>(id)] != 0) {
    return;
  }
  doomed_[static_cast<std::size_t>(id)] = 1;
  doomed_list_.push_back(id);
}

void FaultSurgeon::doom_scan(Network& net, const RoutingAlgorithm& alg,
                             const PacketTable& packets,
                             const std::vector<NetworkInterface>& nis) {
  doomed_.assign(packets.size(), 0);
  doomed_list_.clear();
  pinned_empty_.clear();

  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    RouterState& r = net.routers_[static_cast<std::size_t>(n)];
    if (r.occupancy == 0 && r.owned == 0) {
      continue;  // no flits, no pinned lanes
    }
    // Visit only lanes that can matter: occupied lanes (one SIMD pass
    // over the ring fill counts) plus pinned-but-possibly-empty lanes
    // (route_ready). Ascending bit order is the scalar (port, VC) nested
    // loop order, and lanes above the configured VC count are never
    // occupied or pinned, so the full 32-lane mask is safe.
    std::uint32_t pinned = 0;
    for (int lane = 0; lane < kNumLanes; ++lane) {
      if (r.in[static_cast<std::size_t>(lane)].route_ready) {
        pinned |= std::uint32_t{1} << lane;
      }
    }
    for (std::uint32_t visit = r.flits.occupied_mask() | pinned; visit != 0;
         visit &= visit - 1) {
      const int lane = std::countr_zero(visit);
      const int p = lane / kMaxVcs;
      const InputVcState& ivc = r.in[static_cast<std::size_t>(lane)];
      const int held = r.flits.size(lane);

      // Established wormholes: a pinned lane's decision names the next
      // channel its owner is committed to. If that channel just died,
      // the owner's remaining flits would be forced across it - the
      // packet cannot be salvaged, whatever its position.
      if (ivc.route_ready) {
        PacketId owner;
        if (held > 0) {
          owner = r.flits.front_packet(lane);
        } else {
          owner = upstream_owner(net, nis, n, lane);
          if (owner >= 0) {
            pinned_empty_.push_back({n, lane, owner});
          }
        }
        if (owner >= 0 && ivc.decision.out_port != Port::local &&
            ivc.decision.out_port != Port::rc) {
          const ChannelId out_ch =
              topo_->out_channel(n, ivc.decision.out_port);
          if (out_ch != kInvalidChannel &&
              net.channel_faulty_[static_cast<std::size_t>(out_ch)] != 0) {
            doom(owner);
          }
        }
      }

      // Unrouted heads anywhere in the lane: position-aware viability
      // (the head will route at this node, arriving through port p).
      for (int off = 0; off < held; ++off) {
        const Flit f = r.flits.peek(lane, off);
        if (!f.is_head() || doomed_[static_cast<std::size_t>(f.packet)] != 0) {
          continue;
        }
        if (!alg.hop_viable(n, static_cast<Port>(p),
                            packets.route_of(f.packet))) {
          doom(f.packet);
        }
      }
    }
  }

  // Packets mid-injection at their source NI.
  for (const NetworkInterface& ni : nis) {
    if (ni.active_ < 0 || doomed_[static_cast<std::size_t>(ni.active_)] != 0) {
      continue;
    }
    if (!alg.hop_viable(ni.node_, Port::local, packets.route_of(ni.active_))) {
      doom(ni.active_);
    }
  }
}

void FaultSurgeon::extract_doomed(Network& net, const PacketTable& packets,
                                  std::vector<NetworkInterface>& nis,
                                  RcUnitManager& rc_units) {
  if (doomed_list_.empty()) {
    return;
  }
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    RouterState& r = net.routers_[static_cast<std::size_t>(n)];
    if (r.occupancy == 0) {
      continue;
    }
    // SIMD occupancy test over the lane fill counts: only non-empty lanes
    // are filtered, in ascending lane order - the (port, VC) order of the
    // scalar nested loops it replaces.
    for (std::uint32_t visit = r.flits.occupied_mask(); visit != 0;
         visit &= visit - 1) {
      const int lane = std::countr_zero(visit);
      const int p = lane / kMaxVcs;
      const int v = lane % kMaxVcs;
      const int held = r.flits.size(lane);
      InputVcState& ivc = r.in[static_cast<std::size_t>(lane)];
      if (ivc.route_ready &&
          doomed_[static_cast<std::size_t>(r.flits.front_packet(lane))] !=
              0) {
        release_lane(r, lane);
      }
      // Filter the ring: pop everything, re-push the survivors. Each
      // removed flit frees one slot of this lane, so one credit returns
      // to whoever mirrors it (the NI, the RC unit, or the upstream
      // router's output VC).
      std::array<Flit, kMaxBufferDepth> keep;
      int kept = 0;
      int removed = 0;
      for (int i = 0; i < held; ++i) {
        const Flit f = r.flits.pop(lane);
        if (doomed_[static_cast<std::size_t>(f.packet)] == 0) {
          keep[static_cast<std::size_t>(kept++)] = f;
          continue;
        }
        ++removed;
        if (static_cast<Port>(p) == Port::local) {
          ++net.local_credit_[net.index(n, v)];
        } else if (static_cast<Port>(p) == Port::rc) {
          ++net.rc_in_credit_[net.index(n, v)];
        } else {
          const ChannelId in_ch = topo_->in_channel(n, static_cast<Port>(p));
          check(in_ch != kInvalidChannel,
                "FaultSurgeon: flit in a lane without an input channel");
          const Channel& ch = topo_->channel(in_ch);
          ++net.routers_[static_cast<std::size_t>(ch.src)]
                .out[static_cast<std::size_t>(
                    FlitStore::lane_of(port_index(ch.src_port), v))]
                .credits;
        }
      }
      for (int i = 0; i < kept; ++i) {
        r.flits.push(lane, keep[static_cast<std::size_t>(i)]);
      }
      if (removed > 0) {
        net.lanes_[static_cast<std::size_t>(net.shard_of(n))]
            .flits_buffered -= static_cast<std::uint64_t>(removed);
        if (kept == 0) {
          r.occupancy &= ~(std::uint64_t{1} << lane);
          // The active-worklist bit clears itself lazily on the next
          // step over an empty router.
        }
      }
    }
  }

  // Empty pinned lanes whose (upstream-walked) owner is doomed.
  for (const PinnedLane& pl : pinned_empty_) {
    if (doomed_[static_cast<std::size_t>(pl.owner)] == 0) {
      continue;
    }
    RouterState& r = net.routers_[static_cast<std::size_t>(pl.node)];
    if (r.in[static_cast<std::size_t>(pl.lane)].route_ready) {
      release_lane(r, pl.lane);
    }
  }

  // Source NIs mid-injection of a doomed packet stop streaming it.
  for (NetworkInterface& ni : nis) {
    if (ni.active_ >= 0 &&
        doomed_[static_cast<std::size_t>(ni.active_)] != 0) {
      ni.active_ = -1;
      ni.active_size_ = 0;
      ni.active_initial_vcs_ = 0;
      ni.next_seq_ = 0;
      ni.vc_ = -1;
    }
  }

  for (const PacketId id : doomed_list_) {
    const PacketRoute& rt = packets.route_of(id);
    if (rt.rc_unit != kInvalidNode) {
      purge_rc(net, rc_units, id, rt.rc_unit);
    }
    ++lost_;
    const PacketHot& hot = packets.hot(id);
    if (hot.measured) {
      ++lost_measured_;
    }
    mark_affected(hot.route);
  }
}

void FaultSurgeon::purge_rc(Network& net, RcUnitManager& rc_units,
                            PacketId id, NodeId unit_node) {
  RcUnitManager::Unit& unit = rc_units.unit_at(unit_node);
  const bool was_rest = RcUnitManager::at_rest(unit);
  for (auto it = unit.queue.begin(); it != unit.queue.end();) {
    it = it->packet == id ? unit.queue.erase(it) : std::next(it);
  }
  if (unit.granted_packet == id) {
    // Credits consumed so far: one per absorbed flit. Before the tail is
    // absorbed that is the buffer fill; after (absorbing_done) the whole
    // packet was absorbed, whatever has been re-injected since.
    const int consumed = unit.absorbing_done
                             ? rc_units.packet_size_
                             : static_cast<int>(unit.buffer.size());
    if (!unit.buffer.empty()) {
      rc_units.flits_held_ -= unit.buffer.size();
      unit.buffer.clear();
    }
    unit.absorbing_done = false;
    unit.reserved = false;
    unit.granted_to = kInvalidNode;
    unit.granted_packet = -1;
    if (consumed > 0) {
      net.add_rc_out_credits(unit.node, consumed);
    }
  }
  if (!was_rest && RcUnitManager::at_rest(unit)) {
    --rc_units.busy_units_;
  }
}

void FaultSurgeon::apply_policy(Network& net, RoutingAlgorithm& alg,
                                PacketTable& packets,
                                std::vector<NetworkInterface>& nis,
                                RcUnitManager& rc_units) {
  // Ascending NI order: the reroute path re-prepares routes through the
  // algorithm's shared RNG stream (or, in counter mode, each NI's private
  // stream), and this is the order the serial NI loop consumes it in -
  // sharded runs call this from the same serial point, so the streams
  // stay bit-identical across shard counts. In counter mode the back
  // phase additionally defers its parallel route preparation whenever an
  // event is pending at the commit cycle, so these reroute draws always
  // precede that cycle's injection draws on every NI stream, exactly as
  // the serial loop orders them.
  for (NetworkInterface& ni : nis) {
    if (ni.queue_head_ >= ni.queue_.size()) {
      continue;
    }
    const std::size_t head_pos = ni.queue_head_;
    std::size_t write = ni.queue_head_;
    for (std::size_t i = ni.queue_head_; i < ni.queue_.size(); ++i) {
      const PacketId id = ni.queue_[i];
      const PacketRoute rt = packets.route_of(id);  // by value: reroute
                                                    // interning may grow
                                                    // the route store
      bool keep = true;
      if (!alg.hop_viable(ni.node_, Port::local, rt)) {
        mark_affected(packets.route_id(id));
        if (policy_ == InFlightPolicy::reroute) {
          PacketRoute fresh;
          fresh.src = rt.src;
          fresh.dst = rt.dst;
          // The guard re-checks viability: a fault-oblivious algorithm
          // (RC's fixed VLs) can fail only through prepare_packet, but
          // nothing forces a fresh route to be usable in general.
          if (alg.prepare_packet(fresh, ni.route_stream()) &&
              alg.hop_viable(ni.node_, Port::local, fresh)) {
            packets.set_route(id, fresh);
            mark_affected(packets.route_id(id));
          } else {
            keep = false;
          }
        } else {
          keep = false;
        }
        if (i == head_pos && ni.perm_requested_) {
          // The outstanding permission request targets the old route's RC
          // unit; cancel it (the kept, re-routed head re-requests).
          if (rt.rc_unit != kInvalidNode) {
            purge_rc(net, rc_units, id, rt.rc_unit);
          }
          ni.perm_requested_ = false;
        }
      }
      if (!keep) {
        ++lost_;
        if (packets.hot(id).measured) {
          ++lost_measured_;
        }
        continue;
      }
      ni.queue_[write++] = id;
    }
    ni.queue_.resize(write);
    if (ni.queue_head_ >= ni.queue_.size()) {
      ni.queue_.clear();  // drained: rewind, as try_inject does
      ni.queue_head_ = 0;
    }
  }
}

void FaultSurgeon::finalize(SimResults& results,
                            const PacketTable& packets) const {
  results.packets_lost = lost_;
  results.packets_lost_measured = lost_measured_;
  if (intervals_.empty()) {
    return;  // fault-free run: window counters stay zero
  }
  Cycle best = -1;
  for (PacketId id = 0; id < static_cast<PacketId>(packets.size()); ++id) {
    const PacketTimes& t = packets.times(id);
    if (fault_active(t.created)) {
      ++results.fault_window_created;
      if (t.ejected >= 0) {
        ++results.fault_window_delivered;
      }
    }
    if (first_fail_ >= 0 && t.ejected >= first_fail_) {
      const std::size_t r = static_cast<std::size_t>(packets.route_id(id));
      if (r < affected_.size() && affected_[r] != 0 &&
          (best < 0 || t.ejected < best)) {
        best = t.ejected;
      }
    }
  }
  results.reconvergence_latency = best < 0 ? -1 : best - first_fail_;
}

}  // namespace deft
