// RC-buffer units and the permission network for the RC baseline.
//
// One unit sits at every boundary router. A source NI must be granted the
// unit guarding its packet's ascending crossing before injecting; requests
// and grants travel with hop-count latency through the permission network.
// The granted packet is absorbed whole into the unit's packet buffer when
// it arrives via the Up channel (the absorption can never stall - the
// buffer was empty and reserved at grant time), then re-injected into the
// destination chiplet through the router's RC input port. The reservation
// is released once the buffer is empty again, which keeps the "ascents
// always drain" invariant that makes RC deadlock-free.
#pragma once

#include <deque>

#include "sim/network.hpp"

namespace deft {

class RcUnitManager {
 public:
  /// Creates one unit per boundary router; `packet_size` fixes each unit's
  /// buffer capacity (they store exactly one packet).
  RcUnitManager(const Topology& topo, int packet_size) {
    reset(topo, packet_size);
  }

  /// A manager without units awaiting reset() (SimWorkspace member state).
  RcUnitManager() = default;

  /// (Re)binds the manager: identical post-state to fresh construction.
  /// Reusing the same topology and packet size clears each unit in place
  /// and keeps the unit/node tables (workspace reuse); otherwise the
  /// tables are rebuilt.
  void reset(const Topology& topo, int packet_size);

  /// NI-side: file a permission request for `packet` targeting the unit at
  /// boundary router `unit_node`. One outstanding request per NI.
  void request(NodeId unit_node, NodeId requester, PacketId packet, Cycle now);

  /// request() variant for the sharded core's distributed delivery: the
  /// busy-unit counter is NOT touched - the at-rest transition (0 or 1) is
  /// returned instead, for the caller to accumulate per shard and fold in
  /// via add_busy_units() at the next serial point. Safe to call
  /// concurrently from different shards as long as each unit's requests
  /// all come from the one shard that owns its node (the partition
  /// guarantees this) - different units never share state besides
  /// busy_units_, which this variant leaves alone.
  int request_parallel(NodeId unit_node, NodeId requester, PacketId packet,
                       Cycle now);

  /// Folds the per-shard at-rest deltas accumulated by request_parallel()
  /// into the busy-unit counter. Serial points only.
  void add_busy_units(int delta) { busy_units_ += delta; }

  /// NI-side: true once the grant for (requester, packet) has arrived.
  bool grant_ready(NodeId unit_node, NodeId requester, PacketId packet,
                   Cycle now) const;

  /// Network hook: a flit was handed to the unit at `unit_node`.
  void absorb(NodeId unit_node, const Flit& flit, Cycle now,
              const PacketTable& packets);

  /// Advance grants and re-inject buffered flits (<= 1 flit/cycle/unit).
  /// O(1) when every unit is at rest (no queued requests, reservation or
  /// buffered flits) - the permanent state under non-RC algorithms.
  void tick(Cycle now, Network& net, const PacketTable& packets);

  /// Registers each unit's initial buffer capacity as RC output credits.
  void publish_initial_credits(Network& net) const;

  /// Progress events (grants issued, flits re-injected) since the last
  /// call; feeds the deadlock watchdog.
  std::uint64_t take_progress() {
    const std::uint64_t p = progress_;
    progress_ = 0;
    return p;
  }

  /// Flits currently buffered across all units (in-flight work). Queried
  /// by the deadlock watchdog every cycle, so kept as a running counter.
  std::uint64_t flits_held() const { return flits_held_; }

  bool has_unit(NodeId node) const {
    return static_cast<std::size_t>(node) < unit_of_node_.size() &&
           unit_of_node_[static_cast<std::size_t>(node)] >= 0;
  }

 private:
  /// The fault-event surgeon purges a doomed packet's requests,
  /// reservation and buffered flits at event boundaries (serial points
  /// only), mirroring this manager's busy/held bookkeeping.
  friend class FaultSurgeon;
  /// Checkpointing serializes each unit's queue, reservation and buffer at
  /// a paused cycle boundary.
  friend class SnapshotAccess;

  struct Request {
    NodeId requester;
    PacketId packet;
    Cycle arrives;  ///< when the request reaches the unit
  };
  struct Unit {
    NodeId node = kInvalidNode;
    std::deque<Request> queue;
    bool reserved = false;
    NodeId granted_to = kInvalidNode;
    PacketId granted_packet = -1;
    Cycle grant_arrives = 0;  ///< when the grant reaches the requester
    std::deque<Flit> buffer;
    bool absorbing_done = false;  ///< tail absorbed, re-injection may run
    int reinject_vc = 0;
  };

  static bool at_rest(const Unit& unit) {
    return !unit.reserved && unit.queue.empty() && unit.buffer.empty();
  }

  int permission_latency(NodeId a, NodeId b) const;
  Unit& unit_at(NodeId node);
  const Unit& unit_at(NodeId node) const;

  const Topology* topo_ = nullptr;
  int packet_size_ = 0;
  std::vector<int> unit_of_node_;
  std::vector<Unit> units_;
  std::uint64_t progress_ = 0;
  std::uint64_t flits_held_ = 0;
  /// Units not at rest; tick() returns immediately when zero.
  int busy_units_ = 0;
};

}  // namespace deft
