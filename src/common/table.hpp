// Plain-text table formatting for bench/example output. Benches print the
// same rows/series the paper's figures and tables report; this keeps that
// output aligned and diffable.
#pragma once

#include <string>
#include <vector>

namespace deft {

/// Accumulates rows of string cells and renders a GitHub-style markdown
/// table with padded columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders the table; every column is padded to its widest cell.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deft
