#include "common/combinatorics.hpp"

#include <limits>

namespace deft {

std::uint64_t binomial(int n, int k) {
  if (k < 0 || k > n) {
    return 0;
  }
  if (k > n - k) {
    k = n - k;
  }
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is always integral at this point, but the
    // multiplication may overflow; detect and saturate.
    const std::uint64_t factor = static_cast<std::uint64_t>(n - k + i);
    if (result > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * factor / static_cast<std::uint64_t>(i);
  }
  return result;
}

std::uint64_t for_each_combination(
    int n, int k, const std::function<bool(const std::vector<int>&)>& visit) {
  require(n >= 0 && k >= 0, "for_each_combination: negative n or k");
  if (k > n) {
    return 0;
  }
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  std::uint64_t count = 0;
  while (true) {
    ++count;
    if (!visit(idx)) {
      return count;
    }
    // Advance to the next lexicographic combination.
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) {
      return count;
    }
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

std::uint64_t for_each_composition(
    int total, int parts,
    const std::function<bool(const std::vector<int>&)>& visit) {
  require(total >= 0 && parts >= 1, "for_each_composition: bad arguments");
  std::vector<int> counts(static_cast<std::size_t>(parts), 0);
  std::uint64_t visited = 0;
  // Recursive enumeration: place 0..remaining in each slot, remainder in
  // the last slot.
  std::function<bool(int, int)> rec = [&](int slot, int remaining) -> bool {
    if (slot == parts - 1) {
      counts[static_cast<std::size_t>(slot)] = remaining;
      ++visited;
      return visit(counts);
    }
    for (int take = 0; take <= remaining; ++take) {
      counts[static_cast<std::size_t>(slot)] = take;
      if (!rec(slot + 1, remaining - take)) {
        return false;
      }
    }
    return true;
  };
  rec(0, total);
  return visited;
}

}  // namespace deft
