// Combinatorial helpers used by fault-scenario enumeration and the
// VL-selection optimizer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace deft {

/// Binomial coefficient C(n, k); saturates at
/// std::numeric_limits<uint64_t>::max() on overflow.
std::uint64_t binomial(int n, int k);

/// Calls visit(indices) for every k-subset of {0..n-1} in lexicographic
/// order; indices is strictly increasing. visit may return false to stop
/// the enumeration early. Returns the number of subsets visited.
std::uint64_t for_each_combination(
    int n, int k, const std::function<bool(const std::vector<int>&)>& visit);

/// Calls visit(counts) for every way to write `total` as an ordered sum of
/// `parts` non-negative integers (a "weak composition"). Returns the number
/// of compositions visited.
std::uint64_t for_each_composition(
    int total, int parts,
    const std::function<bool(const std::vector<int>&)>& visit);

}  // namespace deft
