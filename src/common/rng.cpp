#include "common/rng.hpp"

namespace deft {

std::uint64_t split_mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from SplitMix64 as recommended by the
  // xoshiro authors; guarantees a nonzero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = split_mix64(sm);
  }
}

Rng Rng::fork(std::uint64_t stream) {
  // Derive an independent generator, e.g. one per network interface, so
  // that per-node traffic is reproducible regardless of simulation order.
  std::uint64_t sm = next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  Rng child(0);
  for (auto& word : child.state_) {
    word = split_mix64(sm);
  }
  return child;
}

}  // namespace deft
