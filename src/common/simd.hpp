// Portable SIMD lane kernels for the hot SoA scans.
//
// Three fixed-shape kernels back the simulator's lane-major data planes
// (sim/router.hpp): summing a port's output-VC credits, finding the
// occupied lanes of a FlitStore, and finding the resolvable entries of an
// MTR distance-table row. Each has a scalar reference implementation and,
// where the target provides them, an SSE2 or NEON variant; the dispatch
// is compile-time, so the chosen backend inlines into the call sites.
//
// Backend selection, first match wins:
//   DEFT_FORCE_SCALAR   scalar everywhere (the CI fallback job compiles
//                       and tests the full suite this way)
//   __SSE2__            x86-64 baseline (always little-endian)
//   __ARM_NEON          AArch64/ARMv7, little-endian only
//   otherwise           scalar
//
// Equivalence invariants (docs/throughput.md spells out the arguments;
// tests/test_simd.cpp checks every kernel against the scalar reference):
//  * Every kernel is a pure element-wise predicate/reduction - no
//    floating point, no reassociation of anything order-sensitive - so
//    vector and scalar answers are exactly equal, and consumers that
//    iterate result masks bit-by-bit (ascending lane index) visit lanes
//    in precisely the order of the scalar (port, VC) nested loops.
//  * port_credit_sums sums all kMaxVcs record slots per port, including
//    lanes above the configured VC count; that equals the VC-bounded
//    scalar sum because unconfigured lanes hold zero credits for the
//    whole run (Network::reset zeroes them and nothing ever writes them).
//  * The mask kernels report exactly the non-zero bytes / the uint16
//    values outside {0, 0xffff}; lanes the scalar loops never visited
//    (above the configured VC count) are empty/unroutable by the same
//    reset argument, so the wider masks add no bits.
#pragma once

#include <cstdint>
#include <cstring>

#if !defined(DEFT_FORCE_SCALAR) && defined(__SSE2__)
#include <emmintrin.h>
#define DEFT_SIMD_BACKEND_SSE2 1
#elif !defined(DEFT_FORCE_SCALAR) && defined(__ARM_NEON) && \
    !defined(__ARM_BIG_ENDIAN)
#include <arm_neon.h>
#define DEFT_SIMD_BACKEND_NEON 1
#else
#define DEFT_SIMD_BACKEND_SCALAR 1
#endif

namespace deft::simd {

/// Name of the compiled backend (observability: the perf harness records
/// it next to its timings).
inline constexpr const char* kBackendName =
#if defined(DEFT_SIMD_BACKEND_SSE2)
    "sse2";
#elif defined(DEFT_SIMD_BACKEND_NEON)
    "neon";
#else
    "scalar";
#endif

namespace scalar {

/// Reference: 32 consecutive 4-byte records, each with a little-endian
/// int16 at byte offset 2 (sim/router.hpp's OutputVc); sums[p] receives
/// the total over records 4p .. 4p+3.
inline void port_credit_sums(const void* records, int* sums) {
  const unsigned char* bytes = static_cast<const unsigned char*>(records);
  for (int p = 0; p < 8; ++p) {
    int total = 0;
    for (int v = 0; v < 4; ++v) {
      std::int16_t credits;
      std::memcpy(&credits, bytes + (p * 4 + v) * 4 + 2, sizeof(credits));
      total += credits;
    }
    sums[p] = total;
  }
}

/// Reference: bit i of the result set iff bytes[i] != 0, over 32 bytes.
inline std::uint32_t nonzero_mask32(const std::uint8_t* bytes) {
  std::uint32_t mask = 0;
  for (int i = 0; i < 32; ++i) {
    if (bytes[i] != 0) {
      mask |= std::uint32_t{1} << i;
    }
  }
  return mask;
}

/// Reference: bit i of the result set iff row[i] is neither 0 nor 0xffff
/// (MtrPlan::kUnreachable), over 8 uint16 values.
inline std::uint32_t routable_mask8(const std::uint16_t* row) {
  std::uint32_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    if (row[i] != 0 && row[i] != 0xffff) {
      mask |= std::uint32_t{1} << i;
    }
  }
  return mask;
}

}  // namespace scalar

#if defined(DEFT_SIMD_BACKEND_SSE2)

/// 32 OutputVc-shaped records -> per-port credit totals. One 16-byte
/// vector is exactly one port's four records; the arithmetic right shift
/// drops the two owner bytes and sign-extends the credit field.
inline void port_credit_sums(const void* records, int* sums) {
  const char* bytes = static_cast<const char*>(records);
  for (int p = 0; p < 8; ++p) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(bytes + p * 16));
    const __m128i credits = _mm_srai_epi32(v, 16);
    const __m128i hi = _mm_add_epi32(
        credits, _mm_shuffle_epi32(credits, _MM_SHUFFLE(1, 0, 3, 2)));
    const __m128i total =
        _mm_add_epi32(hi, _mm_shuffle_epi32(hi, _MM_SHUFFLE(2, 3, 0, 1)));
    sums[p] = _mm_cvtsi128_si32(total);
  }
}

inline std::uint32_t nonzero_mask32(const std::uint8_t* bytes) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16));
  const std::uint32_t lo_zero = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(lo, zero)));
  const std::uint32_t hi_zero = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(hi, zero)));
  return ~(lo_zero | (hi_zero << 16));
}

inline std::uint32_t routable_mask8(const std::uint16_t* row) {
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
  const __m128i skip =
      _mm_or_si128(_mm_cmpeq_epi16(v, _mm_setzero_si128()),
                   _mm_cmpeq_epi16(v, _mm_set1_epi16(-1)));
  // packs: one byte per uint16 comparison result; movemask then yields
  // one bit per element in the low 8 bits.
  const std::uint32_t skip_mask = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_packs_epi16(skip, _mm_setzero_si128())));
  return ~skip_mask & 0xffu;
}

#elif defined(DEFT_SIMD_BACKEND_NEON)

inline void port_credit_sums(const void* records, int* sums) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(records);
  for (int p = 0; p < 8; ++p) {
    const int32x4_t v = vreinterpretq_s32_u8(vld1q_u8(bytes + p * 16));
    // Credits sit in the high half of each little-endian 32-bit record;
    // the arithmetic shift drops the owner bytes and sign-extends.
    const int32x4_t credits = vshrq_n_s32(v, 16);
#if defined(__aarch64__)
    sums[p] = vaddvq_s32(credits);
#else
    const int32x2_t half =
        vadd_s32(vget_low_s32(credits), vget_high_s32(credits));
    sums[p] = vget_lane_s32(vpadd_s32(half, half), 0);
#endif
  }
}

inline std::uint32_t nonzero_mask32(const std::uint8_t* bytes) {
  static const std::uint8_t kBitsInit[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                             1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bits = vld1q_u8(kBitsInit);
  std::uint32_t mask = 0;
  for (int half = 0; half < 2; ++half) {
    const uint8x16_t v = vld1q_u8(bytes + half * 16);
    const uint8x16_t nz = vtstq_u8(v, v);  // 0xff where the byte != 0
    const uint8x16_t sel = vandq_u8(nz, bits);
    // Three pairwise adds fold 16 selected bit-bytes into two bytes: the
    // low/high 8-lane masks.
    uint8x8_t fold = vpadd_u8(vget_low_u8(sel), vget_high_u8(sel));
    fold = vpadd_u8(fold, fold);
    fold = vpadd_u8(fold, fold);
    const std::uint32_t lo = vget_lane_u8(fold, 0);
    const std::uint32_t hi = vget_lane_u8(fold, 1);
    mask |= (lo | (hi << 8)) << (half * 16);
  }
  return mask;
}

inline std::uint32_t routable_mask8(const std::uint16_t* row) {
  static const std::uint16_t kBitsInit[8] = {1, 2, 4, 8, 16, 32, 64, 128};
  const uint16x8_t v = vld1q_u16(row);
  const uint16x8_t skip = vorrq_u16(vceqq_u16(v, vdupq_n_u16(0)),
                                    vceqq_u16(v, vdupq_n_u16(0xffff)));
  const uint16x8_t sel = vbicq_u16(vld1q_u16(kBitsInit), skip);
#if defined(__aarch64__)
  return vaddvq_u16(sel);
#else
  const uint16x4_t half = vadd_u16(vget_low_u16(sel), vget_high_u16(sel));
  const uint16x4_t fold = vpadd_u16(half, half);
  return vget_lane_u16(vpadd_u16(fold, fold), 0);
#endif
}

#else  // scalar backend

using scalar::nonzero_mask32;
using scalar::port_credit_sums;
using scalar::routable_mask8;

#endif

}  // namespace deft::simd
