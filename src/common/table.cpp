#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/types.hpp"

namespace deft {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace deft
