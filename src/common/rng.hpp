// Deterministic pseudo-random number generation (xoshiro256**).
//
// The standard <random> engines are avoided for reproducibility across
// standard-library implementations: every simulation result in this repo is
// a pure function of its configuration seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace deft {

/// One step of the SplitMix64 generator; used for seeding and hashing.
std::uint64_t split_mix64(std::uint64_t& state);

/// xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state,
/// passes BigCrush; plenty for traffic generation and fault sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire's debiased multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Derives an independent child generator for the given stream id.
  Rng fork(std::uint64_t stream);

  /// Raw 256-bit generator state, exposed for simulation checkpointing
  /// (sim/snapshot.hpp): restoring a saved state resumes the stream at
  /// exactly the draw it was paused on.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Counter-based generator (SplitMix64 finalizer over a keyed counter):
/// draw k of stream (seed, stream) is a pure function of (seed, stream, k),
/// so consumers that know their draw index can generate in any order - or
/// on any thread - and still produce the exact sequence a serial consumer
/// would. The partitioned simulation core's `rng_mode = counter` gives
/// each NI one stream keyed by its endpoint node id, which is what lets
/// packet-route preparation run inside the parallel shard phases while
/// staying bit-identical across shard counts (sim/simulator.cpp).
///
/// Statistical quality: the SplitMix64 finalizer passes BigCrush on
/// sequential counters; per-stream keys are themselves SplitMix64 outputs
/// of (seed, stream), so streams are pairwise independent for all
/// practical purposes. Checkpointing serializes only `counter()` - the
/// key re-derives from (seed, stream) at reset.
class CounterRng {
 public:
  CounterRng() = default;

  CounterRng(std::uint64_t seed, std::uint64_t stream) {
    // Two mixing rounds over the (seed, stream) pair: distinct seeds and
    // distinct streams both decorrelate the key.
    std::uint64_t s = seed;
    (void)split_mix64(s);
    s += stream;
    key_ = split_mix64(s);
  }

  /// Next raw 64-bit value (the SplitMix64 finalizer of key_ + counter).
  std::uint64_t next() {
    std::uint64_t z = key_ + 0x9e3779b97f4a7c15ULL * ++counter_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound), Lemire-debiased exactly like
  /// Rng::uniform. Rejection may consume extra draws; that is fine - the
  /// sequence is still a pure function of the draw index.
  std::uint64_t uniform(std::uint64_t bound) {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Draw cursor, exposed for simulation checkpointing: restoring the
  /// counter into a generator constructed with the same (seed, stream)
  /// resumes the sequence mid-stream.
  std::uint64_t counter() const { return counter_; }
  void set_counter(std::uint64_t counter) { counter_ = counter; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace deft
