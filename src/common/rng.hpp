// Deterministic pseudo-random number generation (xoshiro256**).
//
// The standard <random> engines are avoided for reproducibility across
// standard-library implementations: every simulation result in this repo is
// a pure function of its configuration seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace deft {

/// One step of the SplitMix64 generator; used for seeding and hashing.
std::uint64_t split_mix64(std::uint64_t& state);

/// xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state,
/// passes BigCrush; plenty for traffic generation and fault sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire's debiased multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Derives an independent child generator for the given stream id.
  Rng fork(std::uint64_t stream);

  /// Raw 256-bit generator state, exposed for simulation checkpointing
  /// (sim/snapshot.hpp): restoring a saved state resumes the stream at
  /// exactly the draw it was paused on.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace deft
