// Basic shared types and checked-precondition helpers for the deft-noc
// library. All other modules include this header.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace deft {

/// Index of a router node in a Topology. Nodes are numbered densely from 0.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Index of a directed physical channel (link) in a Topology.
using ChannelId = std::int32_t;
inline constexpr ChannelId kInvalidChannel = -1;

/// Index of a vertical link (bidirectional) within the whole system.
using VlId = std::int32_t;
inline constexpr VlId kInvalidVl = -1;

/// Index of a unidirectional vertical channel (2 per vertical link).
using VlChannelId = std::int32_t;

/// Simulation time in cycles.
using Cycle = std::int64_t;

/// Throws std::invalid_argument when a caller-facing precondition fails.
inline void require(bool condition, const std::string& what) {
  if (!condition) {
    throw std::invalid_argument(what);
  }
}

/// Literal-message overload: the exception message is only materialized on
/// failure, so a passing check costs one branch and zero allocations (the
/// std::string overload above constructs its message unconditionally,
/// which both costs a heap allocation per call site per invocation and
/// forbids these helpers inside allocation-free regions such as
/// Simulator::run(SimWorkspace&)).
inline void require(bool condition, const char* what) {
  if (!condition) {
    throw std::invalid_argument(what);
  }
}

/// Throws std::logic_error when an internal invariant fails. Used on paths
/// where the cost of the check is negligible; hot paths use assert().
inline void check(bool condition, const std::string& what) {
  if (!condition) {
    throw std::logic_error(what);
  }
}

/// Literal-message overload; see require(bool, const char*).
inline void check(bool condition, const char* what) {
  if (!condition) {
    throw std::logic_error(what);
  }
}

}  // namespace deft
