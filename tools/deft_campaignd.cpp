// deft_campaignd: the crash-isolated, backpressured scenario-campaign
// daemon (docs/operations.md).
//
//   $ deft_campaignd --spool SPOOL_DIR [options]
//
// Watches SPOOL_DIR for "<id>.cfg" request files (the deft_sim config
// format plus service keys), runs them across a worker pool with
// per-request fault isolation and per-run budgets, and appends one JSONL
// result row per request to the results stream. SIGTERM/SIGINT drain the
// in-flight batch, flush results, and write a resumable manifest.
//
// Options (defaults in brackets):
//   --spool DIR        spool directory (required; created if missing)
//   --results FILE     JSONL results stream [<spool>/results.jsonl]
//   --manifest FILE    shutdown manifest    [<spool>/manifest.txt]
//   --workers N        pool width           [hardware concurrency]
//   --high-water N     queue high-water mark before overload [256]
//   --batch N          max requests per pool dispatch [64]
//   --batch-size N     resident interleaved runs per worker [1]
//   --poll-ms N        spool poll interval [50]
//   --cache-cap N      artifact-cache capacity per tier [32]
//   --max-cycles N     per-run cycle budget [2000000]
//   --max-seconds S    per-run wall-clock budget [60]
//   --journal FILE     write-ahead journal of started/committed records
//                      (crash recovery, docs/operations.md) [disabled]
//   --checkpoint-dir DIR      per-run snapshot images; interrupted runs
//                             resume from them after a crash [disabled]
//   --checkpoint-min-cycles N first checkpoint threshold [100000]
//   --checkpoint-every N      cycles between checkpoints [100000]
//   --once             process the current spool content, then exit
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

long parse_long(const char* flag, const char* value, long lo, long hi) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < lo || parsed > hi) {
    std::fprintf(stderr, "error: %s expects an integer in [%ld, %ld]\n",
                 flag, lo, hi);
    std::exit(1);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deft;
  DaemonOptions options;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--spool") == 0) {
      options.spool_dir = value();
    } else if (std::strcmp(arg, "--results") == 0) {
      options.results_path = value();
    } else if (std::strcmp(arg, "--manifest") == 0) {
      options.manifest_path = value();
    } else if (std::strcmp(arg, "--workers") == 0) {
      options.engine.workers =
          static_cast<int>(parse_long(arg, value(), 1, 1024));
    } else if (std::strcmp(arg, "--high-water") == 0) {
      options.queue_high_water =
          static_cast<std::size_t>(parse_long(arg, value(), 1, 1'000'000));
    } else if (std::strcmp(arg, "--batch") == 0) {
      options.batch_max =
          static_cast<std::size_t>(parse_long(arg, value(), 1, 1'000'000));
    } else if (std::strcmp(arg, "--batch-size") == 0) {
      options.engine.batch_size =
          static_cast<int>(parse_long(arg, value(), 1, kMaxBatchSize));
    } else if (std::strcmp(arg, "--poll-ms") == 0) {
      options.poll_ms = static_cast<int>(parse_long(arg, value(), 1, 60'000));
    } else if (std::strcmp(arg, "--cache-cap") == 0) {
      options.engine.cache_capacity =
          static_cast<std::size_t>(parse_long(arg, value(), 1, 1'000'000));
    } else if (std::strcmp(arg, "--max-cycles") == 0) {
      options.engine.budget.max_cycles =
          parse_long(arg, value(), 1, 1'000'000'000);
    } else if (std::strcmp(arg, "--max-seconds") == 0) {
      options.engine.budget.max_seconds =
          static_cast<double>(parse_long(arg, value(), 1, 86'400));
    } else if (std::strcmp(arg, "--journal") == 0) {
      options.journal_path = value();
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      options.engine.checkpoint_dir = value();
    } else if (std::strcmp(arg, "--checkpoint-min-cycles") == 0) {
      options.engine.checkpoint_min_cycles =
          parse_long(arg, value(), 1, 1'000'000'000);
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      options.engine.checkpoint_every_cycles =
          parse_long(arg, value(), 1, 1'000'000'000);
    } else if (std::strcmp(arg, "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg);
      return 1;
    }
  }
  if (options.spool_dir.empty()) {
    std::fprintf(stderr, "usage: deft_campaignd --spool DIR [options]\n");
    return 1;
  }
  if (options.results_path.empty()) {
    options.results_path = options.spool_dir / "results.jsonl";
  }
  if (options.manifest_path.empty()) {
    options.manifest_path = options.spool_dir / "manifest.txt";
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);

  try {
    CampaignDaemon daemon(options);
    std::printf("deft_campaignd: spool %s, results %s, %d workers, "
                "high-water %zu\n",
                options.spool_dir.string().c_str(),
                options.results_path.string().c_str(),
                daemon.engine().workers(), options.queue_high_water);
    std::fflush(stdout);
    std::size_t rows = 0;
    if (once) {
      // Drain the spool that exists right now, then exit cleanly (used
      // by smoke tests and one-shot campaign runs).
      while (g_stop == 0) {
        if (daemon.run_pass() == 0 && daemon.queue_size() == 0) {
          break;
        }
      }
      daemon.shutdown();
      rows = daemon.rows_written();
    } else {
      rows = daemon.run(&g_stop);
    }
    const ArtifactCache::Counters c = daemon.engine().cache().counters();
    std::printf("deft_campaignd: wrote %zu rows; cache ctx %llu/%llu "
                "alg %llu/%llu hit/miss, %llu evictions; %s\n",
                rows, static_cast<unsigned long long>(c.context_hits),
                static_cast<unsigned long long>(c.context_misses),
                static_cast<unsigned long long>(c.algorithm_hits),
                static_cast<unsigned long long>(c.algorithm_misses),
                static_cast<unsigned long long>(c.evictions),
                g_stop != 0 ? "stopped by signal (manifest written)"
                            : "spool drained");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deft_campaignd: fatal: %s\n", e.what());
    return 1;
  }
}
