#!/usr/bin/env python3
"""Validate intra-repo markdown links and docs reachability.

Two checks, run over every tracked *.md file in the repository:

1. **Link resolution** — every relative (intra-repo) markdown link must
   point at a file or directory that exists. External links (http/https/
   mailto) and pure in-page anchors (#section) are ignored; a relative
   link's "#fragment" suffix is stripped before the existence check.

2. **Docs reachability** — every page under docs/ must be reachable
   from README.md by following intra-repo markdown links. A docs page
   nobody links to is dead weight: either link it from the docs map in
   README.md (directly or via another reachable page) or delete it.

Exit codes:
  0  all links resolve and every docs/*.md page is reachable
  1  at least one broken link or unreachable docs page (each problem is
     printed with its file and line number)

No dependencies beyond the Python standard library; CI runs it without
building anything (the "doc-check" job in .github/workflows/ci.yml).
"""

import os
import re
import sys

#: Inline markdown links: [text](target). Images ![alt](target) match
#: too via the optional bang. Targets containing spaces or parentheses
#: are not used in this repo, so the simple no-close-paren class is
#: enough - tighten here if that ever changes.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that mark a link as external (never checked on disk).
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

#: Directories never scanned for markdown (build trees, VCS internals).
SKIP_DIRS = {".git", "build", ".github"}


def find_markdown_files(root):
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(dirpath, name),
                                             root))
    return sorted(found)


def strip_code(text):
    """Blanks out fenced and inline code so example links are not checked.

    Line structure is preserved (newlines survive) so reported line
    numbers stay correct.
    """
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"^(```|~~~).*?^\1\s*$", blank, text,
                  flags=re.DOTALL | re.MULTILINE)
    return re.sub(r"`[^`\n]*`", blank, text)


def extract_links(md_text):
    """Yields (line_number, raw_target) for every inline link."""
    for line_no, line in enumerate(strip_code(md_text).splitlines(), 1):
        for match in LINK_RE.finditer(line):
            yield line_no, match.group(1)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    md_files = find_markdown_files(root)
    if "README.md" not in md_files:
        print("error: no README.md at the repository root", file=sys.stderr)
        return 1

    problems = []
    # md file -> set of md files it links to (for the reachability walk).
    md_links = {path: set() for path in md_files}

    for path in md_files:
        with open(os.path.join(root, path), encoding="utf-8") as f:
            text = f.read()
        base_dir = os.path.dirname(path)
        for line_no, target in extract_links(text):
            if EXTERNAL_RE.match(target) or target.startswith("#"):
                continue
            rel = os.path.normpath(
                os.path.join(base_dir, target.split("#", 1)[0]))
            if rel.startswith(".."):
                problems.append(f"{path}:{line_no}: link escapes the "
                                f"repository: {target}")
                continue
            if not os.path.exists(os.path.join(root, rel)):
                problems.append(f"{path}:{line_no}: broken link: {target} "
                                f"(resolved to {rel})")
                continue
            if rel in md_links:
                md_links[path].add(rel)

    # Breadth-first walk of the markdown link graph from README.md.
    reachable = set()
    frontier = ["README.md"]
    while frontier:
        page = frontier.pop()
        if page in reachable:
            continue
        reachable.add(page)
        frontier.extend(md_links.get(page, ()))

    for path in md_files:
        if path.startswith("docs" + os.sep) and path not in reachable:
            problems.append(f"{path}: not reachable from README.md via "
                            f"markdown links - add it to the docs map")

    if problems:
        print(f"{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    docs_pages = sum(1 for p in md_files if p.startswith("docs" + os.sep))
    print(f"doc-check: {len(md_files)} markdown files, all intra-repo "
          f"links resolve, {docs_pages} docs pages reachable from "
          f"README.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
