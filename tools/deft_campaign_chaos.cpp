// deft_campaign_chaos: end-to-end chaos smoke for the campaign service.
//
//   $ deft_campaign_chaos --daemon ./deft_campaignd \
//                         --client ./deft_campaign_client [options]
//
// Boots a real deft_campaignd, submits a mixed campaign through the real
// client - valid short runs (repeated scenarios, so the artifact cache
// must warm up), malformed configs, an oversized request, a
// guaranteed-wedging MTR scenario and chaos-injected worker exceptions -
// and asserts that:
//
//   * every request reaches a terminal outcome in
//     ok|failed|deadlocked|timeout|rejected,
//   * each request class lands on its expected outcome,
//   * the daemon never restarts (one PID start to finish),
//   * warm repeated scenarios show algorithm-cache hits in their rows,
//   * with more requests than the queue high-water mark, deferred
//     requests get explicit `overloaded` rows and still finish,
//   * SIGTERM drains in-flight work and writes a resumable manifest
//     covering everything unstarted.
//
// --kill9 switches to the crash-recovery campaign instead: the daemon is
// booted with a write-ahead journal and a checkpoint directory, fed a mix
// of quick and long-running requests, SIGKILLed the moment a long run's
// checkpoint image appears, and restarted with the same flags. The
// recovery assertions:
//
//   * every request still reaches exactly ONE terminal row - nothing is
//     lost, nothing is duplicated, across the kill,
//   * each request class still lands on its expected outcome,
//   * every long run that was mid-flight at kill time (checkpoint on
//     disk, no terminal row yet) resumes from its snapshot, proven by a
//     `resumed_at` cycle in its final row rather than a cycle-0 restart.
//
// Options: --requests N (default 1000; default 80 with --kill9),
// --workers N (default 2), --high-water N (default 64), --kill9,
// --keep (do not delete the work dir).
// Exits 0 when every assertion holds, 1 otherwise.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/runner.hpp"
#include "service/spool.hpp"

namespace {

using namespace deft;

int g_failures = 0;

void chaos_check(bool ok, const std::string& what) {
  if (ok) {
    return;
  }
  std::fprintf(stderr, "CHAOS FAIL: %s\n", what.c_str());
  ++g_failures;
}

// --- tiny JSONL row access (rows come from ResultRow::to_json) ---------

std::string json_string_field(const std::string& row, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = row.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  std::string out;
  for (std::size_t i = at + needle.size(); i < row.size(); ++i) {
    if (row[i] == '\\' && i + 1 < row.size()) {
      out += row[i + 1];
      ++i;
      continue;
    }
    if (row[i] == '"') {
      break;
    }
    out += row[i];
  }
  return out;
}

bool outcome_terminal(const std::string& outcome) {
  return outcome == "ok" || outcome == "failed" || outcome == "deadlocked" ||
         outcome == "timeout" || outcome == "rejected";
}

// --- subprocess plumbing -----------------------------------------------

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(cargv[0], cargv.data());
    std::fprintf(stderr, "execv %s: %s\n", cargv[0], std::strerror(errno));
    _exit(127);
  }
  return pid;
}

int run_and_wait(const std::vector<std::string>& argv) {
  const pid_t pid = spawn(argv);
  if (pid < 0) {
    return -1;
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// --- request generation ------------------------------------------------

/// The dynamic fault-event list of the guaranteed-wedging MTR scenario:
/// the two failure waves (cycles 800 and 1100) over the 4-channel pattern
/// that tests/test_fault_dynamic.cpp's goldens pin as leaving MTR unable
/// to drain. Channel-ascending order, first half in the first wave -
/// exactly dyn_timeline(false) there.
std::string wedge_fault_events(std::uint64_t pattern_seed) {
  const ExperimentContext ctx = ExperimentContext::reference(6, pattern_seed);
  const VlFaultSet pattern = grid_fault_pattern(ctx, 4);
  std::vector<std::string> tokens;
  for (int c = 0; c < ctx.topo().num_vl_channels(); ++c) {
    if (!pattern.is_faulty(c)) {
      continue;
    }
    for (int v = 0; v < ctx.topo().num_vls(); ++v) {
      const auto& vl = ctx.topo().vl(static_cast<VlId>(v));
      if (vl.down_vl_channel() == c) {
        tokens.push_back(std::to_string(v) + "v");
      } else if (vl.up_vl_channel() == c) {
        tokens.push_back(std::to_string(v) + "^");
      }
    }
  }
  std::string events;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    events += (i == 0 ? "" : " ");
    events += (i < tokens.size() / 2 ? "800:" : "1100:") + tokens[i];
  }
  return events;
}

std::string valid_config(int variant) {
  // A small rotation of distinct scenarios: repeats of each variant must
  // hit the warm artifact cache.
  static const char* kAlgorithms[] = {"deft", "mtr", "rc"};
  std::ostringstream cfg;
  cfg << "chiplets = 4\n"
      << "algorithm = " << kAlgorithms[variant % 3] << "\n"
      << "traffic = uniform\n"
      << "rate = 0.005\n"
      << "warmup = 50\n"
      << "measure = 300\n"
      << "seed = 42\n";
  if (variant % 2 == 1) {
    cfg << "faults = 0v\n";
  }
  return cfg.str();
}

std::string malformed_config(int variant) {
  switch (variant % 4) {
    case 0:
      return "chiplets = 4\nalgorithn = deft\nrate = nine\n";
    case 1:
      return "chiplets = 4\nrate = 99.0\n";
    case 2:
      return "chiplets = 4\nfault_events = 10:zz\n";
    default:
      return "chiplets = 4\nfault_policy = panic\n";
  }
}

// --- crash-recovery campaign (--kill9) ---------------------------------

/// A run long enough (~60k measured cycles) that the daemon is still
/// mid-simulation when its first checkpoints (every 1000 cycles past
/// 1000) hit the disk - the SIGKILL window.
std::string long_config() {
  return "chiplets = 4\nalgorithm = deft\ntraffic = uniform\n"
         "rate = 0.004\nwarmup = 500\nmeasure = 60000\n"
         "drain_max = 100000\nseed = 9\n";
}

int run_kill9(const std::string& daemon_bin, const std::string& client_bin,
              int requests, int workers, bool keep) {
  char work_template[] = "/tmp/deft_chaos_XXXXXX";
  const char* work = mkdtemp(work_template);
  if (work == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::filesystem::path workdir(work);
  const std::filesystem::path spool = workdir / "spool";
  const std::filesystem::path stage = workdir / "stage";
  const std::filesystem::path ckpts = workdir / "checkpoints";
  const std::filesystem::path results = workdir / "results.jsonl";
  const std::filesystem::path manifest = workdir / "manifest.txt";
  const std::filesystem::path journal = workdir / "journal.log";
  std::filesystem::create_directories(stage);
  std::printf("chaos(kill9): work dir %s\n", work);

  // ---- the campaign: quick ok runs + malformed + long checkpointed ----
  std::map<std::string, std::string> expected;  // id -> expected outcome
  std::set<std::string> long_ids;
  std::vector<std::filesystem::path> staged;
  for (int i = 0; i < requests; ++i) {
    char id[64];
    std::string body;
    std::string outcome;
    if (i % 20 == 2) {
      std::snprintf(id, sizeof(id), "long-%04d", i);
      body = long_config();
      outcome = "ok";
      long_ids.insert(id);
    } else if (i % 10 == 7) {
      std::snprintf(id, sizeof(id), "bad-%04d", i);
      body = malformed_config(i);
      outcome = "rejected";
    } else {
      std::snprintf(id, sizeof(id), "ok-%04d", i);
      body = valid_config(i);
      outcome = "ok";
    }
    const std::filesystem::path file = stage / (std::string(id) + ".cfg");
    if (!atomic_write_file(file, body)) {
      std::fprintf(stderr, "error: cannot stage %s\n", file.string().c_str());
      return 1;
    }
    staged.push_back(file);
    expected[id] = outcome;
  }
  std::printf("chaos(kill9): %d requests, %zu long checkpointed runs\n",
              requests, long_ids.size());

  const std::vector<std::string> daemon_argv = {
      daemon_bin,
      "--spool", spool.string(),
      "--results", results.string(),
      "--manifest", manifest.string(),
      "--journal", journal.string(),
      "--checkpoint-dir", ckpts.string(),
      "--checkpoint-min-cycles", "1000",
      "--checkpoint-every", "1000",
      "--workers", std::to_string(workers),
      "--poll-ms", "20"};
  pid_t daemon_pid = spawn(daemon_argv);
  if (daemon_pid < 0) {
    std::perror("fork");
    return 1;
  }

  for (std::size_t at = 0; at < staged.size(); at += 100) {
    std::vector<std::string> cmd = {client_bin, "submit", "--spool",
                                    spool.string()};
    for (std::size_t i = at; i < std::min(at + 100, staged.size()); ++i) {
      cmd.push_back(staged[i].string());
    }
    if (run_and_wait(cmd) != 0) {
      std::fprintf(stderr, "error: client submit failed\n");
      kill(daemon_pid, SIGKILL);
      return 1;
    }
  }

  // ---- wait for a checkpoint image, then SIGKILL mid-batch ------------
  bool saw_checkpoint = false;
  for (int waited_ms = 0; waited_ms < 120'000; waited_ms += 25) {
    std::error_code ec;
    for (const std::filesystem::directory_entry& entry :
         std::filesystem::directory_iterator(ckpts, ec)) {
      if (entry.path().extension() == ".ckpt") {
        saw_checkpoint = true;
        break;
      }
    }
    if (saw_checkpoint) {
      break;
    }
    usleep(25 * 1000);
  }
  chaos_check(saw_checkpoint,
        "no checkpoint image appeared within 120s (long runs too short, "
        "or checkpointing is broken)");
  if (!saw_checkpoint) {
    kill(daemon_pid, SIGKILL);
    return 1;
  }
  kill(daemon_pid, SIGKILL);
  {
    int status = 0;
    waitpid(daemon_pid, &status, 0);
    chaos_check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "daemon did not die by SIGKILL as intended");
  }

  // Snapshot the crash state: which ids already had a terminal row, and
  // which checkpoints were on disk. A checkpointed id WITHOUT a terminal
  // row was mid-flight - after recovery its row must prove it resumed
  // from the snapshot (resumed_at), not from cycle 0.
  std::set<std::string> terminal_at_kill;
  {
    std::ifstream in(results);
    std::string row;
    while (std::getline(in, row)) {
      // The torn final line (if the kill landed mid-append) has no
      // complete outcome field and parses as non-terminal - exactly how
      // the recovering daemon will treat it after truncation.
      if (outcome_terminal(json_string_field(row, "outcome"))) {
        terminal_at_kill.insert(json_string_field(row, "id"));
      }
    }
  }
  std::set<std::string> must_resume;
  {
    std::error_code ec;
    for (const std::filesystem::directory_entry& entry :
         std::filesystem::directory_iterator(ckpts, ec)) {
      const std::string id = entry.path().stem().string();
      if (entry.path().extension() == ".ckpt" &&
          terminal_at_kill.count(id) == 0) {
        must_resume.insert(id);
      }
    }
  }
  std::printf("chaos(kill9): killed daemon with %zu terminal rows durable, "
              "%zu runs mid-flight with checkpoints\n",
              terminal_at_kill.size(), must_resume.size());
  chaos_check(!must_resume.empty(),
        "SIGKILL landed after every checkpointed run finished - no "
        "resume path exercised");

  // ---- restart with identical flags; recovery must finish the job ----
  daemon_pid = spawn(daemon_argv);
  if (daemon_pid < 0) {
    std::perror("fork");
    return 1;
  }
  {
    std::vector<std::string> cmd = {client_bin,  "wait",
                                    "--results", results.string(),
                                    "--timeout", "900",
                                    "--quiet"};
    for (const auto& [id, outcome] : expected) {
      cmd.push_back(id);
    }
    const int rc = run_and_wait(cmd);
    chaos_check(rc == 0, "client wait exited " + std::to_string(rc) +
                       " (expected 0: all requests terminal post-recovery)");
  }
  kill(daemon_pid, SIGTERM);
  {
    int status = 0;
    waitpid(daemon_pid, &status, 0);
    chaos_check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "restarted daemon did not exit cleanly after SIGTERM");
  }

  // ---- exactly-once + resume assertions over the full stream ----------
  std::map<std::string, int> terminal_rows;
  std::map<std::string, std::string> final_outcome;
  std::set<std::string> resumed_ids;
  {
    std::ifstream in(results);
    std::string row;
    while (std::getline(in, row)) {
      const std::string id = json_string_field(row, "id");
      const std::string outcome = json_string_field(row, "outcome");
      if (!outcome_terminal(outcome)) {
        continue;  // overloaded deferral notices are not terminal
      }
      ++terminal_rows[id];
      final_outcome[id] = outcome;
      if (row.find("\"resumed_at\": ") != std::string::npos) {
        resumed_ids.insert(id);
      }
    }
  }
  for (const auto& [id, outcome] : expected) {
    const auto it = terminal_rows.find(id);
    if (it == terminal_rows.end()) {
      chaos_check(false, "request " + id + " lost across SIGKILL: no "
                       "terminal row");
      continue;
    }
    chaos_check(it->second == 1,
          "request " + id + " has " + std::to_string(it->second) +
              " terminal rows (exactly-once violated)");
    chaos_check(final_outcome[id] == outcome,
          "request " + id + ": expected " + outcome + ", got " +
              final_outcome[id]);
  }
  chaos_check(terminal_rows.size() == expected.size(),
        "terminal rows for " + std::to_string(terminal_rows.size()) +
            " ids, expected " + std::to_string(expected.size()));
  for (const std::string& id : must_resume) {
    chaos_check(resumed_ids.count(id) != 0,
          "mid-flight run " + id + " restarted from cycle 0 instead of "
          "resuming from its checkpoint (no resumed_at in its row)");
  }
  // Commit removes a run's checkpoint; after full drain none remain.
  {
    std::size_t leftover = 0;
    std::error_code ec;
    for (const std::filesystem::directory_entry& entry :
         std::filesystem::directory_iterator(ckpts, ec)) {
      leftover += entry.path().extension() == ".ckpt" ? 1 : 0;
    }
    chaos_check(leftover == 0, std::to_string(leftover) +
                             " checkpoint image(s) left after commit");
  }
  std::printf("chaos(kill9): recovery ok - %zu terminal rows, %zu runs "
              "resumed from checkpoints\n",
              terminal_rows.size(), resumed_ids.size());

  if (g_failures == 0 && !keep) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  } else if (g_failures != 0) {
    std::printf("chaos(kill9): work dir kept for inspection: %s\n", work);
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "chaos(kill9): %d assertion(s) failed\n",
                 g_failures);
    return 1;
  }
  std::printf("chaos(kill9): all assertions passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string daemon_bin;
  std::string client_bin;
  int requests = -1;
  int workers = 2;
  int high_water = 64;
  bool kill9 = false;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--daemon") == 0 && i + 1 < argc) {
      daemon_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--client") == 0 && i + 1 < argc) {
      client_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--high-water") == 0 && i + 1 < argc) {
      high_water = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill9") == 0) {
      kill9 = true;
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else {
      std::fprintf(stderr, "usage: deft_campaign_chaos --daemon BIN "
                           "--client BIN [--requests N] [--workers N] "
                           "[--high-water N] [--kill9] [--keep]\n");
      return 1;
    }
  }
  if (requests < 0) {
    requests = kill9 ? 80 : 1000;
  }
  if (daemon_bin.empty() || client_bin.empty() || requests < 10) {
    std::fprintf(stderr, "error: --daemon and --client are required and "
                         "--requests must be >= 10\n");
    return 1;
  }
  if (kill9) {
    return run_kill9(daemon_bin, client_bin, requests, workers, keep);
  }

  char work_template[] = "/tmp/deft_chaos_XXXXXX";
  const char* work = mkdtemp(work_template);
  if (work == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::filesystem::path workdir(work);
  const std::filesystem::path spool = workdir / "spool";
  const std::filesystem::path stage = workdir / "stage";
  const std::filesystem::path results = workdir / "results.jsonl";
  const std::filesystem::path manifest = workdir / "manifest.txt";
  std::filesystem::create_directories(stage);
  std::printf("chaos: work dir %s\n", work);

  // ---- generate the mixed campaign ------------------------------------
  // ~2% wedge + ~1% chaos + ~10% malformed + 1 oversized; rest valid.
  const std::string wedge_spec = wedge_fault_events(42);
  std::printf("chaos: wedging MTR fault events: %s\n", wedge_spec.c_str());
  const std::string wedge_config =
      "chiplets = 6\nalgorithm = mtr\ntraffic = uniform\nrate = 0.01\n"
      "warmup = 500\nmeasure = 1500\ndrain_max = 6000\nseed = 7\n"
      "fault_policy = drop\nfault_events = " +
      wedge_spec + "\n";

  std::map<std::string, std::string> expected;  // id -> expected outcome
  std::vector<std::filesystem::path> staged;
  int n_wedge = 0;
  int n_chaos = 0;
  int n_bad = 0;
  int n_ok = 0;
  for (int i = 0; i < requests; ++i) {
    char id[64];
    std::string body;
    std::string outcome;
    if (i % 50 == 7) {
      std::snprintf(id, sizeof(id), "wedge-%04d", i);
      body = wedge_config;
      outcome = "timeout";  // wedges by drain-budget exhaustion
      ++n_wedge;
    } else if (i % 97 == 11) {
      std::snprintf(id, sizeof(id), "chaos-%04d", i);
      body = valid_config(i) + "x_chaos = throw\n";
      outcome = "failed";
      ++n_chaos;
    } else if (i % 10 == 3) {
      std::snprintf(id, sizeof(id), "bad-%04d", i);
      body = malformed_config(i);
      outcome = "rejected";
      ++n_bad;
    } else if (i == 5) {
      std::snprintf(id, sizeof(id), "big-%04d", i);
      body = "chiplets = 4\n# pad\n" + std::string(80 * 1024, '#');
      outcome = "rejected";
    } else {
      std::snprintf(id, sizeof(id), "ok-%04d", i);
      body = valid_config(i);
      outcome = "ok";
      ++n_ok;
    }
    const std::filesystem::path file = stage / (std::string(id) + ".cfg");
    if (!atomic_write_file(file, body)) {
      std::fprintf(stderr, "error: cannot stage %s\n", file.string().c_str());
      return 1;
    }
    staged.push_back(file);
    expected[id] = outcome;
  }
  std::printf("chaos: %d requests (%d ok, %d malformed, %d wedge, %d chaos, "
              "1 oversized), high-water %d\n",
              requests, n_ok, n_bad, n_wedge, n_chaos, high_water);

  // ---- boot the daemon -------------------------------------------------
  const pid_t daemon_pid = spawn({daemon_bin, "--spool", spool.string(),
                                  "--results", results.string(),
                                  "--manifest", manifest.string(),
                                  "--workers", std::to_string(workers),
                                  "--high-water", std::to_string(high_water),
                                  "--poll-ms", "20"});
  if (daemon_pid < 0) {
    std::perror("fork");
    return 1;
  }

  // ---- submit through the real client, in chunks ----------------------
  for (std::size_t at = 0; at < staged.size(); at += 100) {
    std::vector<std::string> cmd = {client_bin, "submit", "--spool",
                                    spool.string()};
    for (std::size_t i = at; i < std::min(at + 100, staged.size()); ++i) {
      cmd.push_back(staged[i].string());
    }
    if (run_and_wait(cmd) != 0) {
      std::fprintf(stderr, "error: client submit failed\n");
      kill(daemon_pid, SIGKILL);
      return 1;
    }
  }

  // ---- wait for every request to reach a terminal outcome -------------
  {
    std::vector<std::string> cmd = {client_bin,  "wait",
                                    "--results", results.string(),
                                    "--timeout", "900",
                                    "--quiet"};
    for (const auto& [id, outcome] : expected) {
      cmd.push_back(id);
    }
    const int rc = run_and_wait(cmd);
    chaos_check(rc == 0, "client wait exited " + std::to_string(rc) +
                       " (expected 0: all requests terminal)");
  }

  // The daemon must still be the same process - crash isolation means a
  // chaos-thrown worker exception never took the service down.
  {
    int status = 0;
    const pid_t reaped = waitpid(daemon_pid, &status, WNOHANG);
    chaos_check(reaped == 0, "daemon exited mid-campaign (no-restart violated)");
  }

  // ---- per-request assertions over the JSONL stream -------------------
  std::map<std::string, std::string> final_outcome;
  std::set<std::string> overloaded_ids;
  bool any_algorithm_hit = false;
  {
    std::ifstream in(results);
    std::string row;
    while (std::getline(in, row)) {
      const std::string id = json_string_field(row, "id");
      const std::string outcome = json_string_field(row, "outcome");
      if (outcome == "overloaded") {
        overloaded_ids.insert(id);
        chaos_check(final_outcome.count(id) == 0,
              "overloaded row for " + id + " after its terminal row");
        continue;
      }
      if (outcome_terminal(outcome)) {
        chaos_check(final_outcome.count(id) == 0,
              "duplicate terminal row for " + id);
        final_outcome[id] = outcome;
        if (row.find("\"algorithm\": \"hit\"") != std::string::npos) {
          any_algorithm_hit = true;
        }
      } else {
        chaos_check(false, "row with unknown outcome '" + outcome + "'");
      }
    }
  }
  for (const auto& [id, outcome] : expected) {
    const auto it = final_outcome.find(id);
    if (it == final_outcome.end()) {
      chaos_check(false, "no terminal row for " + id);
      continue;
    }
    if (it->second != outcome) {
      chaos_check(false, "request " + id + ": expected " + outcome + ", got " +
                       it->second);
    }
  }
  chaos_check(any_algorithm_hit,
        "no algorithm-cache hit in any row (repeated scenarios must warm "
        "the artifact cache)");
  if (requests > high_water) {
    chaos_check(!overloaded_ids.empty(),
          "requests exceeded the high-water mark but no overloaded row "
          "was emitted");
  }
  for (const std::string& id : overloaded_ids) {
    chaos_check(final_outcome.count(id) != 0,
          "deferred request " + id + " never reached a terminal outcome");
  }
  std::printf("chaos: campaign done - %zu terminal rows, %zu deferrals, "
              "algorithm cache %s\n",
              final_outcome.size(), overloaded_ids.size(),
              any_algorithm_hit ? "warm" : "cold");

  // ---- SIGTERM drain: submit more work, stop the daemon mid-flight ----
  std::vector<std::string> drain_ids;
  {
    std::vector<std::string> cmd = {client_bin, "submit", "--spool",
                                    spool.string()};
    for (int i = 0; i < 50; ++i) {
      char id[64];
      std::snprintf(id, sizeof(id), "drain-%04d", i);
      const std::filesystem::path file = stage / (std::string(id) + ".cfg");
      // Wedge configs keep the workers busy long enough for SIGTERM to
      // land with requests still unstarted.
      atomic_write_file(file, i % 4 == 0 ? wedge_config : valid_config(i));
      cmd.push_back(file.string());
      drain_ids.push_back(id);
    }
    if (run_and_wait(cmd) != 0) {
      std::fprintf(stderr, "error: client submit (drain phase) failed\n");
      kill(daemon_pid, SIGKILL);
      return 1;
    }
  }
  usleep(200 * 1000);  // let the daemon ingest and start a batch
  kill(daemon_pid, SIGTERM);
  {
    int status = 0;
    waitpid(daemon_pid, &status, 0);
    chaos_check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "daemon did not exit cleanly after SIGTERM");
  }

  // Every drain-phase request must be accounted for: either a terminal
  // row was flushed before shutdown, or its file is in the manifest (and
  // still in the spool) for a future daemon to resume.
  chaos_check(std::filesystem::exists(manifest), "no shutdown manifest written");
  std::set<std::string> manifest_ids;
  {
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) {
        manifest_ids.insert(std::filesystem::path(line).stem().string());
        chaos_check(std::filesystem::exists(line),
              "manifest entry " + line + " is not in the spool");
      }
    }
  }
  std::map<std::string, std::string> post_outcome;
  {
    std::ifstream in(results);
    std::string row;
    while (std::getline(in, row)) {
      const std::string outcome = json_string_field(row, "outcome");
      if (outcome_terminal(outcome)) {
        post_outcome[json_string_field(row, "id")] = outcome;
      }
    }
  }
  std::size_t resumable = 0;
  for (const std::string& id : drain_ids) {
    const bool finished = post_outcome.count(id) != 0;
    const bool manifested = manifest_ids.count(id) != 0;
    chaos_check(finished || manifested,
          "drain request " + id + " lost: no terminal row, not in manifest");
    chaos_check(!(finished && manifested),
          "drain request " + id + " both finished and in manifest");
    resumable += manifested ? 1 : 0;
  }
  std::printf("chaos: SIGTERM drain ok - %zu finished, %zu resumable in "
              "manifest\n",
              drain_ids.size() - resumable, resumable);

  if (g_failures == 0 && !keep) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  } else if (g_failures != 0) {
    std::printf("chaos: work dir kept for inspection: %s\n", work);
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "chaos: %d assertion(s) failed\n", g_failures);
    return 1;
  }
  std::printf("chaos: all assertions passed\n");
  return 0;
}
