// deft_campaign_client: submit scenario requests to a deft_campaignd
// spool and wait for their result rows.
//
//   $ deft_campaign_client submit --spool DIR FILE...
//       Publishes each FILE atomically into the spool as "<stem>.cfg"
//       (write .tmp, rename). Prints "submitted <id>" per file.
//
//   $ deft_campaign_client wait --results FILE --timeout SECONDS ID...
//       Polls the JSONL results stream until every ID has a *terminal*
//       row (ok|failed|deadlocked|timeout|rejected; `overloaded` rows are
//       deferral notices, not terminal). Prints "<id> <outcome>" per ID
//       and exits 0, or exits 2 on timeout listing the missing IDs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/campaign.hpp"
#include "service/spool.hpp"

namespace {

using deft::RequestOutcome;

// Pulls the string value of `"key": "..."` out of one JSONL row. The rows
// are produced by ResultRow::to_json with known key order; this is a
// client-side convenience, not a JSON parser.
std::string json_string_field(const std::string& row, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = row.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  std::string out;
  for (std::size_t i = at + needle.size(); i < row.size(); ++i) {
    if (row[i] == '\\' && i + 1 < row.size()) {
      out += row[i + 1];
      ++i;
      continue;
    }
    if (row[i] == '"') {
      break;
    }
    out += row[i];
  }
  return out;
}

bool outcome_terminal(const std::string& outcome) {
  return outcome == "ok" || outcome == "failed" || outcome == "deadlocked" ||
         outcome == "timeout" || outcome == "rejected";
}

int cmd_submit(int argc, char** argv) {
  std::filesystem::path spool;
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spool") == 0 && i + 1 < argc) {
      spool = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (spool.empty() || files.empty()) {
    std::fprintf(stderr,
                 "usage: deft_campaign_client submit --spool DIR FILE...\n");
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(spool, ec);
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot read %s\n", file.string().c_str());
      return 1;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const std::string id = file.stem().string();
    const std::filesystem::path target =
        spool / (id + deft::kSpoolExtension);
    if (!deft::atomic_write_file(target, content.str())) {
      std::fprintf(stderr, "error: cannot publish %s\n",
                   target.string().c_str());
      return 1;
    }
    std::printf("submitted %s\n", id.c_str());
  }
  return 0;
}

int cmd_wait(int argc, char** argv) {
  std::filesystem::path results;
  double timeout_s = 300.0;
  bool quiet = false;
  std::set<std::string> waiting;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--results") == 0 && i + 1 < argc) {
      results = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      waiting.insert(argv[i]);
    }
  }
  if (results.empty() || waiting.empty()) {
    std::fprintf(stderr,
                 "usage: deft_campaign_client wait --results FILE "
                 "[--timeout SECONDS] ID...\n");
    return 1;
  }
  std::map<std::string, std::string> outcomes;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (true) {
    // Re-read from the top each poll: rows are append-only and small, and
    // a full re-read keeps the client stateless across daemon restarts.
    std::ifstream in(results);
    std::string row;
    while (std::getline(in, row)) {
      const std::string id = json_string_field(row, "id");
      const std::string outcome = json_string_field(row, "outcome");
      if (waiting.count(id) != 0 && outcome_terminal(outcome)) {
        outcomes[id] = outcome;
      }
    }
    if (outcomes.size() == waiting.size()) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "error: timed out; missing terminal rows for:");
      for (const std::string& id : waiting) {
        if (outcomes.count(id) == 0) {
          std::fprintf(stderr, " %s", id.c_str());
        }
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!quiet) {
    for (const auto& [id, outcome] : outcomes) {
      std::printf("%s %s\n", id.c_str(), outcome.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: deft_campaign_client submit|wait [options]\n");
    return 1;
  }
  if (std::strcmp(argv[1], "submit") == 0) {
    return cmd_submit(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "wait") == 0) {
    return cmd_wait(argc - 2, argv + 2);
  }
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", argv[1]);
  return 1;
}
