#!/usr/bin/env python3
"""Compare a fresh perf-matrix run against the committed baseline.

Usage: check_perf_regression.py BASELINE.json NEW.json [--tolerance 0.25]
       check_perf_regression.py --baseline OTHER.json NEW.json

The gate tracks the machine-portable metrics: the per-scenario speedup
ratios (active-set/full-scan for the matrix scenarios, workspace/fresh-
Simulator for the short-run sweep scenario, batched/fresh-Simulator for
its "sweep1k/batchN" editions), which are measured within one run on one
machine and so cancel out host speed. A ratio that drops
more than --tolerance below the committed baseline fails the check, as
does a scenario present in the baseline but missing from the fresh run
(a silently shrunk matrix must not pass the gate). Absolute cycles/sec
values in the JSON are informational (they depend on the host) and are
printed but not gated.

--baseline overrides the positional baseline (handy for comparing a
fresh run against an arbitrary recorded file, e.g. a previous PR's
artifact, without reordering arguments in CI).

Sharded-scenario keys ("<scenario>/shardsN") are wall-clock ratios of a
serial run over an N-thread run, so they are only comparable between
hosts that can actually run N threads in parallel. When the fresh run's
recorded "hardware_concurrency" (in its "config" object) is below N, the
key is skipped with a note instead of gated - a 1-core container cannot
regress (or satisfy) a 4-shard speedup. Conversely, when the fresh host
*can* express the ratio (hardware_concurrency >= N) the floor is raised
to at least (1 - tolerance) x 1.0: a capable host must roughly break
even on sharding even when the committed baseline was recorded on a
weaker host whose same key legitimately measured a parallelism tax
(ratio < 1.0, e.g. the 1-core numbers in BENCH_PR5.json).

A geomean summary line over the scenarios common to both runs is printed
at the end ("overall"-style aggregate keys are excluded from it).

Exit codes:
  0  every gated scenario passed
  1  at least one gated ratio regressed past --tolerance (or a baseline
     scenario is missing from the fresh run)
  2  malformed input: unreadable file, invalid JSON, or a JSON document
     without the expected "speedup" table
  3  the host filter skipped *every* baseline scenario - nothing was
     actually gated, so a success banner would be a lie (e.g. a baseline
     containing only shard ratios checked on a 1-core container). The
     warning lists each skipped scenario and why it was skipped.
"""

import argparse
import json
import math
import re
import sys

#: Aggregate keys that may appear in a "speedup" table alongside the
#: per-scenario ratios; they are gated like any other key but excluded
#: from the geomean summary (they are already aggregates).
AGGREGATE_KEYS = {"overall", "geomean"}

#: Suffix of shard-count-dependent scenario keys.
SHARDS_KEY_RE = re.compile(r"/shards(\d+)$")


def shards_of_key(key: str):
    """Shard count of a "<scenario>/shardsN" key, or None."""
    match = SHARDS_KEY_RE.search(key)
    return int(match.group(1)) if match else None


def die_malformed(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_speedups(path: str) -> dict:
    """Reads the "speedup" table of a perf JSON, with actionable errors."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        die_malformed(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        die_malformed(f"{path} is not valid JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(doc.get("speedup"), dict):
        die_malformed(f"{path} has no \"speedup\" table; is it a "
                      f"--perf-json output?")
    bad = {k: v for k, v in doc["speedup"].items()
           if not isinstance(v, (int, float)) or isinstance(v, bool)}
    if bad:
        die_malformed(f"non-numeric speedup entries in {path}: {sorted(bad)}")
    return doc


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    # RawDescriptionHelpFormatter keeps the usage/exit-code layout of the
    # module docstring intact in --help instead of rewrapping it to mush.
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed baseline JSON (positional)")
    parser.add_argument("fresh", help="fresh --perf-json output to check")
    parser.add_argument("--baseline", dest="baseline_override", default=None,
                        metavar="PATH",
                        help="override the positional baseline path")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup ratios")
    args = parser.parse_args()

    baseline_path = args.baseline_override or args.baseline
    if baseline_path is None:
        parser.error("a baseline is required (positional or --baseline)")

    baseline = load_speedups(baseline_path)
    fresh = load_speedups(args.fresh)

    config = fresh.get("config")
    fresh_hw = config.get("hardware_concurrency") if isinstance(config, dict) \
        else None

    failures = []
    gated = 0
    skipped = []  # (key, reason) pairs, re-printed in the exit-3 warning
    for key, base_value in sorted(baseline["speedup"].items()):
        new_value = fresh["speedup"].get(key)
        shards = shards_of_key(key)
        if (shards is not None and isinstance(fresh_hw, int)
                and fresh_hw < shards):
            reason = (f"host has {fresh_hw} hardware threads, cannot "
                      f"express a {shards}-shard ratio")
            print(f"skip speedup[{key}]: {reason}")
            skipped.append((key, reason))
            continue
        gated += 1
        if new_value is None:
            print(f"FAIL speedup[{key}]: missing from fresh run")
            failures.append(
                f"speedup[{key}]: present in baseline but missing from "
                f"{args.fresh} (scenario dropped from the matrix?)")
            continue
        floor = base_value * (1.0 - args.tolerance)
        if (shards is not None and isinstance(fresh_hw, int)
                and fresh_hw >= shards):
            # A host that can express an N-shard ratio must at least
            # break even (modulo tolerance), even against a baseline
            # recorded on a weaker host where the key measured a
            # parallelism tax (< 1.0).
            floor = max(floor, 1.0 - args.tolerance)
        status = "OK " if new_value >= floor else "FAIL"
        print(f"{status} speedup[{key}]: baseline {base_value:.3f} -> "
              f"fresh {new_value:.3f} (floor {floor:.3f})")
        if new_value < floor:
            failures.append(
                f"speedup[{key}] regressed: {new_value:.3f} < {floor:.3f} "
                f"(baseline {base_value:.3f}, tolerance {args.tolerance:.0%})")

    for key in sorted(set(fresh["speedup"]) - set(baseline["speedup"])):
        print(f"info speedup[{key}]: new scenario (no baseline), "
              f"{fresh['speedup'][key]:.3f}")

    for point in fresh.get("points", []):
        if point.get("core") == "active_set":
            label = point.get("scenario") or point.get("algorithm", "?")
            print(f"info {label}: "
                  f"{point.get('cycles_per_sec', 0):,.0f} cycles/s, "
                  f"{point.get('flit_hops_per_sec', 0):,.0f} flit-hops/s")
        elif point.get("mode") in ("workspace", "batched"):
            print(f"info {point.get('scenario', '?')}: "
                  f"{point.get('points_per_sec', 0):,.1f} sweep points/s")

    # Geomean summary over the per-scenario ratios both runs share.
    common = [k for k in baseline["speedup"]
              if k in fresh["speedup"] and k not in AGGREGATE_KEYS]
    if common:
        base_gm = geomean(baseline["speedup"][k] for k in common)
        new_gm = geomean(fresh["speedup"][k] for k in common)
        print(f"\ngeomean speedup over {len(common)} scenarios: "
              f"baseline {base_gm:.3f} -> fresh {new_gm:.3f} "
              f"({new_gm / base_gm:.3f}x of baseline)")

    if failures:
        print("\nPerf regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if gated == 0 and skipped:
        print(f"\nWARNING: all {len(skipped)} baseline scenarios were "
              f"skipped by the hardware_concurrency filter - nothing was "
              f"gated. This is not a pass; run the check on a host with "
              f"enough cores (or fix the baseline). Skipped:",
              file=sys.stderr)
        for key, reason in skipped:
            print(f"  - speedup[{key}]: {reason}", file=sys.stderr)
        return 3
    print("\nNo perf regression against the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
