#!/usr/bin/env python3
"""Compare a fresh perf-matrix run against the committed baseline.

Usage: check_perf_regression.py BASELINE.json NEW.json [--tolerance 0.25]

The gate tracks the machine-portable metrics: the per-scenario
active-set/full-scan speedup ratios, which are measured within one run on
one machine and so cancel out host speed. A ratio that drops more than
--tolerance below the committed baseline fails the check, as does a
scenario present in the baseline but missing from the fresh run (a
silently shrunk matrix must not pass the gate). Absolute cycles/sec
values in the JSON are informational (they depend on the host) and are
printed but not gated.

Exits 1 on regressions and 2 on malformed input (unreadable file, invalid
JSON, or a JSON document without the expected "speedup" table).
"""

import argparse
import json
import sys


def die_malformed(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_speedups(path: str) -> dict:
    """Reads the "speedup" table of a perf JSON, with actionable errors."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        die_malformed(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        die_malformed(f"{path} is not valid JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(doc.get("speedup"), dict):
        die_malformed(f"{path} has no \"speedup\" table; is it a "
                      f"--perf-json output?")
    bad = {k: v for k, v in doc["speedup"].items()
           if not isinstance(v, (int, float)) or isinstance(v, bool)}
    if bad:
        die_malformed(f"non-numeric speedup entries in {path}: {sorted(bad)}")
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup ratios")
    args = parser.parse_args()

    baseline = load_speedups(args.baseline)
    fresh = load_speedups(args.fresh)

    failures = []
    for key, base_value in sorted(baseline["speedup"].items()):
        new_value = fresh["speedup"].get(key)
        if new_value is None:
            print(f"FAIL speedup[{key}]: missing from fresh run")
            failures.append(
                f"speedup[{key}]: present in baseline but missing from "
                f"{args.fresh} (scenario dropped from the matrix?)")
            continue
        floor = base_value * (1.0 - args.tolerance)
        status = "OK " if new_value >= floor else "FAIL"
        print(f"{status} speedup[{key}]: baseline {base_value:.3f} -> "
              f"fresh {new_value:.3f} (floor {floor:.3f})")
        if new_value < floor:
            failures.append(
                f"speedup[{key}] regressed: {new_value:.3f} < {floor:.3f} "
                f"(baseline {base_value:.3f}, tolerance {args.tolerance:.0%})")

    for key in sorted(set(fresh["speedup"]) - set(baseline["speedup"])):
        print(f"info speedup[{key}]: new scenario (no baseline), "
              f"{fresh['speedup'][key]:.3f}")

    for point in fresh.get("points", []):
        if point.get("core") == "active_set":
            label = point.get("scenario") or point.get("algorithm", "?")
            print(f"info {label}: "
                  f"{point.get('cycles_per_sec', 0):,.0f} cycles/s, "
                  f"{point.get('flit_hops_per_sec', 0):,.0f} flit-hops/s")

    if failures:
        print("\nPerf regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nNo perf regression against the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
