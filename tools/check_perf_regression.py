#!/usr/bin/env python3
"""Compare a fresh perf-core run against the committed baseline.

Usage: check_perf_regression.py BASELINE.json NEW.json [--tolerance 0.25]

The gate tracks the machine-portable metrics: the active-set/full-scan
speedup ratios, which are measured within one run on one machine and so
cancel out host speed. A ratio that drops more than --tolerance below the
committed baseline fails the check. Absolute cycles/sec values in the JSON
are informational (they depend on the host) and are printed but not gated.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup ratios")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    for key, base_value in sorted(baseline["speedup"].items()):
        new_value = fresh["speedup"].get(key)
        if new_value is None:
            failures.append(f"speedup[{key}]: missing from fresh run")
            continue
        floor = base_value * (1.0 - args.tolerance)
        status = "OK " if new_value >= floor else "FAIL"
        print(f"{status} speedup[{key}]: baseline {base_value:.3f} -> "
              f"fresh {new_value:.3f} (floor {floor:.3f})")
        if new_value < floor:
            failures.append(
                f"speedup[{key}] regressed: {new_value:.3f} < {floor:.3f} "
                f"(baseline {base_value:.3f}, tolerance {args.tolerance:.0%})")

    for point in fresh.get("points", []):
        if point["core"] == "active_set":
            print(f"info {point['algorithm']:>4} rate={point['rate']:.3f}: "
                  f"{point['cycles_per_sec']:,.0f} cycles/s, "
                  f"{point['flit_hops_per_sec']:,.0f} flit-hops/s")

    if failures:
        print("\nPerf regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nNo perf regression against the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
